//! Sparse-LU inspector — the Table-1 contract extended to the third
//! kernel (left-looking Gilbert–Peierls LU).
//!
//! Each column of a left-looking LU *is* a sparse triangular solve
//! (`L(0:j-1) x = A(:,j)`), so LU's VI-Prune inspector is the
//! triangular-solve inspector iterated over columns: the inspection
//! graph is the dependence graph of the (growing) `L` with the RHS
//! patterns `SP(A(:,j))`, the strategy is DFS, and the inspection set
//! is one reach set per column — the complete symbolic factorization.

use super::{EnabledTransformation, InspectionGraph, InspectionStrategy, SymbolicInspector};
use sympiler_graph::lu_symbolic::{lu_symbolic, LuSymbolic};
use sympiler_graph::ordering::{compute_ordering, Ordering};
use sympiler_graph::transversal::{compute_pre_pivot, PrePivot};
use sympiler_sparse::{ops, CscMatrix, SparseError};

/// Inspection set for LU VI-Prune: the per-column reach sets (update
/// schedules) plus the predicted factor patterns they imply — in the
/// coordinates of the **pre-pivoted, ordered** matrix `Qᵀ·P·A·Q` when
/// a static pre-pivot and/or a fill-reducing ordering was requested.
#[derive(Debug, Clone)]
pub struct LuReachSets {
    pub symbolic: LuSymbolic,
    /// The fill-reducing ordering computed at inspection time
    /// (`col_perm[new] = old`); `None` under [`Ordering::Natural`].
    /// [`Self::symbolic`] describes `Qᵀ·P·A·Q`, not `A`.
    pub col_perm: Option<Vec<usize>>,
    /// The static pre-pivot row permutation `P` computed at inspection
    /// time (`row_perm[new] = old`, in the coordinates of `A` —
    /// *before* the ordering applies); `None` under [`PrePivot::Off`]
    /// and on the identity-matching fast path (diagonal already
    /// zero-free).
    pub row_perm: Option<Vec<usize>>,
}

/// VI-Prune inspector for LU: column-by-column DFS over the growing
/// `DG_L` (Gilbert–Peierls symbolic analysis), optionally preceded by
/// a static pre-pivot (row matching) and a fill-reducing ordering —
/// all resolved exactly once per compiled pattern.
pub struct LuVIPruneInspector;

impl LuVIPruneInspector {
    /// Run the inspection for the full unsymmetric matrix `a` in its
    /// natural order.
    pub fn inspect(&self, a: &CscMatrix) -> LuReachSets {
        self.inspect_ordered(a, Ordering::Natural)
    }

    /// Run the inspection with a fill-reducing ordering (no
    /// pre-pivot); see [`Self::inspect_pivoted`].
    pub fn inspect_ordered(&self, a: &CscMatrix, ordering: Ordering) -> LuReachSets {
        self.inspect_pivoted(a, ordering, PrePivot::Off)
            .expect("inspection without a pre-pivot cannot fail")
    }

    /// Run the full compile-time inspection pipeline:
    ///
    /// 1. **pre-pivot** — compute the row matching `P`
    ///    ([`compute_pre_pivot`]) so `P·A` has a structurally zero-free
    ///    diagonal (identity fast path when it already is);
    /// 2. **ordering** — compute `Q` ([`compute_ordering`]) on the
    ///    pre-pivoted matrix and apply it **symmetrically**
    ///    (`Qᵀ·(P·A)·Q`, preserving the matched diagonal — see
    ///    [`ops::permute_rows_cols`]);
    /// 3. **reach sets** — Gilbert–Peierls symbolic factorization of
    ///    the resulting pattern.
    ///
    /// The returned reach sets, patterns, and schedules all live in
    /// the final (pivoted + ordered) coordinates; `row_perm` and
    /// `col_perm` map them back to `A`'s.
    ///
    /// # Errors
    /// [`SparseError::StructurallySingular`] when a pre-pivot was
    /// requested but no perfect matching exists — static-pivot LU is
    /// structurally impossible for this pattern under any row
    /// permutation, and the failure surfaces *here*, at inspection
    /// time, instead of as a zero pivot deep in the numeric phase.
    pub fn inspect_pivoted(
        &self,
        a: &CscMatrix,
        ordering: Ordering,
        pre_pivot: PrePivot,
    ) -> Result<LuReachSets, SparseError> {
        let row_perm = compute_pre_pivot(a, pre_pivot)?;
        let pivoted_storage;
        let pivoted = match &row_perm {
            Some(p) => {
                pivoted_storage = ops::permute_rows(a, p)?;
                &pivoted_storage
            }
            None => a,
        };
        let col_perm = compute_ordering(pivoted, ordering);
        let symbolic = match &col_perm {
            Some(perm) => lu_symbolic(
                &ops::permute_rows_cols(pivoted, perm)
                    .expect("ordering produced a valid permutation"),
            ),
            None => lu_symbolic(pivoted),
        };
        Ok(LuReachSets {
            symbolic,
            col_perm,
            row_perm,
        })
    }
}

impl SymbolicInspector for LuVIPruneInspector {
    type Set = LuReachSets;

    fn graph(&self) -> InspectionGraph {
        // Same classification row as triangular-solve VI-Prune: each
        // column solve consumes DG_L plus an RHS pattern (here A(:,j)).
        InspectionGraph::DependenceGraphWithRhs
    }

    fn strategy(&self) -> InspectionStrategy {
        InspectionStrategy::Dfs
    }

    fn enables(&self) -> &'static [EnabledTransformation] {
        &[
            EnabledTransformation::LoopDistribution,
            EnabledTransformation::Unroll,
            EnabledTransformation::Peel,
            EnabledTransformation::Vectorize,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    #[test]
    fn classification_matches_trisolve_row() {
        let i = LuVIPruneInspector;
        assert_eq!(i.graph(), InspectionGraph::DependenceGraphWithRhs);
        assert_eq!(i.strategy(), InspectionStrategy::Dfs);
        assert!(i
            .enables()
            .contains(&EnabledTransformation::LoopDistribution));
    }

    #[test]
    fn inspection_produces_complete_schedules() {
        let a = gen::convection_diffusion_2d(5, 5, 1.0, 1);
        let set = LuVIPruneInspector.inspect(&a);
        assert_eq!(set.symbolic.n, 25);
        assert!(set.symbolic.l_nnz() >= 25);
        assert!(set.symbolic.u_nnz() >= 25);
        assert!(set.col_perm.is_none(), "natural order bakes no perm");
        // Every scheduled update references an earlier column.
        for j in 0..25 {
            for &k in set.symbolic.reach(j) {
                assert!(k < j);
            }
        }
    }

    #[test]
    fn ordered_inspection_matches_symbolic_of_permuted_matrix() {
        let a = gen::circuit_unsym(60, 4, 2, 11);
        for ordering in [Ordering::Rcm, Ordering::Colamd] {
            let set = LuVIPruneInspector.inspect_ordered(&a, ordering);
            let perm = set.col_perm.as_ref().expect("ordering computed");
            let b = sympiler_sparse::ops::permute_rows_cols(&a, perm).unwrap();
            let direct = sympiler_graph::lu_symbolic(&b);
            assert_eq!(set.symbolic, direct, "{ordering:?}");
            assert!(set.row_perm.is_none(), "no pre-pivot requested");
        }
    }

    #[test]
    fn pivoted_inspection_matches_symbolic_of_composed_matrix() {
        let a = gen::circuit_zero_diag(80, 4, 2, 5);
        for ordering in [Ordering::Natural, Ordering::Colamd] {
            for pre_pivot in [PrePivot::Transversal, PrePivot::WeightedMatching] {
                let set = LuVIPruneInspector
                    .inspect_pivoted(&a, ordering, pre_pivot)
                    .expect("zero-diag circuits have a perfect matching");
                let p = set.row_perm.as_ref().expect("pre-pivot must move rows");
                let ap = sympiler_sparse::ops::permute_rows(&a, p).unwrap();
                let b = match &set.col_perm {
                    Some(q) => sympiler_sparse::ops::permute_rows_cols(&ap, q).unwrap(),
                    None => ap,
                };
                assert_eq!(
                    set.symbolic,
                    sympiler_graph::lu_symbolic(&b),
                    "{ordering:?} + {pre_pivot:?}"
                );
            }
        }
    }

    #[test]
    fn structurally_singular_surfaces_at_inspection() {
        // An empty column: no matching exists at all.
        let mut t = sympiler_sparse::TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 1, 1.0);
        t.push(1, 2, 1.0); // column 2 shares rows with 0/1; row 2 empty
        let a = t.to_csc().unwrap();
        let err = LuVIPruneInspector
            .inspect_pivoted(&a, Ordering::Natural, PrePivot::Transversal)
            .unwrap_err();
        assert!(matches!(
            err,
            SparseError::StructurallySingular {
                n: 3,
                structural_rank: 2
            }
        ));
    }
}
