//! Sparse-LU inspector — the Table-1 contract extended to the third
//! kernel (left-looking Gilbert–Peierls LU).
//!
//! Each column of a left-looking LU *is* a sparse triangular solve
//! (`L(0:j-1) x = A(:,j)`), so LU's VI-Prune inspector is the
//! triangular-solve inspector iterated over columns: the inspection
//! graph is the dependence graph of the (growing) `L` with the RHS
//! patterns `SP(A(:,j))`, the strategy is DFS, and the inspection set
//! is one reach set per column — the complete symbolic factorization.

use super::{EnabledTransformation, InspectionGraph, InspectionStrategy, SymbolicInspector};
use sympiler_graph::lu_symbolic::{lu_symbolic, LuSymbolic};
use sympiler_sparse::CscMatrix;

/// Inspection set for LU VI-Prune: the per-column reach sets (update
/// schedules) plus the predicted factor patterns they imply.
#[derive(Debug, Clone)]
pub struct LuReachSets {
    pub symbolic: LuSymbolic,
}

/// VI-Prune inspector for LU: column-by-column DFS over the growing
/// `DG_L` (Gilbert–Peierls symbolic analysis).
pub struct LuVIPruneInspector;

impl LuVIPruneInspector {
    /// Run the inspection for the full unsymmetric matrix `a`.
    pub fn inspect(&self, a: &CscMatrix) -> LuReachSets {
        LuReachSets {
            symbolic: lu_symbolic(a),
        }
    }
}

impl SymbolicInspector for LuVIPruneInspector {
    type Set = LuReachSets;

    fn graph(&self) -> InspectionGraph {
        // Same classification row as triangular-solve VI-Prune: each
        // column solve consumes DG_L plus an RHS pattern (here A(:,j)).
        InspectionGraph::DependenceGraphWithRhs
    }

    fn strategy(&self) -> InspectionStrategy {
        InspectionStrategy::Dfs
    }

    fn enables(&self) -> &'static [EnabledTransformation] {
        &[
            EnabledTransformation::LoopDistribution,
            EnabledTransformation::Unroll,
            EnabledTransformation::Peel,
            EnabledTransformation::Vectorize,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    #[test]
    fn classification_matches_trisolve_row() {
        let i = LuVIPruneInspector;
        assert_eq!(i.graph(), InspectionGraph::DependenceGraphWithRhs);
        assert_eq!(i.strategy(), InspectionStrategy::Dfs);
        assert!(i
            .enables()
            .contains(&EnabledTransformation::LoopDistribution));
    }

    #[test]
    fn inspection_produces_complete_schedules() {
        let a = gen::convection_diffusion_2d(5, 5, 1.0, 1);
        let set = LuVIPruneInspector.inspect(&a);
        assert_eq!(set.symbolic.n, 25);
        assert!(set.symbolic.l_nnz() >= 25);
        assert!(set.symbolic.u_nnz() >= 25);
        // Every scheduled update references an earlier column.
        for j in 0..25 {
            for &k in set.symbolic.reach(j) {
                assert!(k < j);
            }
        }
    }
}
