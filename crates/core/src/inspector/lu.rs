//! Sparse-LU inspector — the Table-1 contract extended to the third
//! kernel (left-looking Gilbert–Peierls LU).
//!
//! Each column of a left-looking LU *is* a sparse triangular solve
//! (`L(0:j-1) x = A(:,j)`), so LU's VI-Prune inspector is the
//! triangular-solve inspector iterated over columns: the inspection
//! graph is the dependence graph of the (growing) `L` with the RHS
//! patterns `SP(A(:,j))`, the strategy is DFS, and the inspection set
//! is one reach set per column — the complete symbolic factorization.

use super::{EnabledTransformation, InspectionGraph, InspectionStrategy, SymbolicInspector};
use sympiler_graph::lu_symbolic::{lu_symbolic, LuSymbolic};
use sympiler_graph::ordering::{compute_ordering, Ordering};
use sympiler_sparse::{ops, CscMatrix};

/// Inspection set for LU VI-Prune: the per-column reach sets (update
/// schedules) plus the predicted factor patterns they imply — in the
/// coordinates of the **ordered** matrix `Qᵀ A Q` when a fill-reducing
/// ordering was requested.
#[derive(Debug, Clone)]
pub struct LuReachSets {
    pub symbolic: LuSymbolic,
    /// The fill-reducing ordering computed at inspection time
    /// (`col_perm[new] = old`); `None` under [`Ordering::Natural`].
    /// [`Self::symbolic`] describes `Qᵀ A Q`, not `A`.
    pub col_perm: Option<Vec<usize>>,
}

/// VI-Prune inspector for LU: column-by-column DFS over the growing
/// `DG_L` (Gilbert–Peierls symbolic analysis), optionally preceded by
/// a fill-reducing ordering — both pattern-only, both run exactly once
/// per compiled pattern.
pub struct LuVIPruneInspector;

impl LuVIPruneInspector {
    /// Run the inspection for the full unsymmetric matrix `a` in its
    /// natural order.
    pub fn inspect(&self, a: &CscMatrix) -> LuReachSets {
        self.inspect_ordered(a, Ordering::Natural)
    }

    /// Run the inspection with a fill-reducing ordering: compute `Q`
    /// once ([`compute_ordering`]), apply it **symmetrically**
    /// (`Qᵀ A Q`, preserving the static diagonal-pivot contract — see
    /// [`ops::permute_rows_cols`]), and analyze the ordered pattern.
    /// The returned reach sets, patterns, and schedules are all in
    /// ordered coordinates; `col_perm` maps them back.
    pub fn inspect_ordered(&self, a: &CscMatrix, ordering: Ordering) -> LuReachSets {
        let col_perm = compute_ordering(a, ordering);
        let symbolic = match &col_perm {
            Some(perm) => lu_symbolic(
                &ops::permute_rows_cols(a, perm).expect("ordering produced a valid permutation"),
            ),
            None => lu_symbolic(a),
        };
        LuReachSets { symbolic, col_perm }
    }
}

impl SymbolicInspector for LuVIPruneInspector {
    type Set = LuReachSets;

    fn graph(&self) -> InspectionGraph {
        // Same classification row as triangular-solve VI-Prune: each
        // column solve consumes DG_L plus an RHS pattern (here A(:,j)).
        InspectionGraph::DependenceGraphWithRhs
    }

    fn strategy(&self) -> InspectionStrategy {
        InspectionStrategy::Dfs
    }

    fn enables(&self) -> &'static [EnabledTransformation] {
        &[
            EnabledTransformation::LoopDistribution,
            EnabledTransformation::Unroll,
            EnabledTransformation::Peel,
            EnabledTransformation::Vectorize,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    #[test]
    fn classification_matches_trisolve_row() {
        let i = LuVIPruneInspector;
        assert_eq!(i.graph(), InspectionGraph::DependenceGraphWithRhs);
        assert_eq!(i.strategy(), InspectionStrategy::Dfs);
        assert!(i
            .enables()
            .contains(&EnabledTransformation::LoopDistribution));
    }

    #[test]
    fn inspection_produces_complete_schedules() {
        let a = gen::convection_diffusion_2d(5, 5, 1.0, 1);
        let set = LuVIPruneInspector.inspect(&a);
        assert_eq!(set.symbolic.n, 25);
        assert!(set.symbolic.l_nnz() >= 25);
        assert!(set.symbolic.u_nnz() >= 25);
        assert!(set.col_perm.is_none(), "natural order bakes no perm");
        // Every scheduled update references an earlier column.
        for j in 0..25 {
            for &k in set.symbolic.reach(j) {
                assert!(k < j);
            }
        }
    }

    #[test]
    fn ordered_inspection_matches_symbolic_of_permuted_matrix() {
        let a = gen::circuit_unsym(60, 4, 2, 11);
        for ordering in [Ordering::Rcm, Ordering::Colamd] {
            let set = LuVIPruneInspector.inspect_ordered(&a, ordering);
            let perm = set.col_perm.as_ref().expect("ordering computed");
            let b = sympiler_sparse::ops::permute_rows_cols(&a, perm).unwrap();
            let direct = sympiler_graph::lu_symbolic(&b);
            assert_eq!(set.symbolic, direct, "{ordering:?}");
        }
    }
}
