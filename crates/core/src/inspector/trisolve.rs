//! Triangular-solve inspectors (Table 1, "Triangular Solve" columns).

use super::{EnabledTransformation, InspectionGraph, InspectionStrategy, SymbolicInspector};
use sympiler_graph::dfs::{reach_into, ReachWorkspace};
use sympiler_graph::supernode::{supernodes_trisolve, SupernodePartition};
use sympiler_sparse::CscMatrix;

/// Inspection set for triangular-solve VI-Prune: the reach-set of the
/// RHS pattern on `DG_L`, in topological (execution) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriReachSet {
    /// Columns to execute, topologically ordered.
    pub reach: Vec<usize>,
}

/// Inspection set for triangular-solve VS-Block: the supernode
/// partition (block-set) of `L`.
#[derive(Debug, Clone)]
pub struct TriBlockSet {
    pub partition: SupernodePartition,
}

/// VI-Prune inspector: DFS over `DG_L` from the RHS pattern.
pub struct TriVIPruneInspector;

impl TriVIPruneInspector {
    /// Run the inspection: `l` is the triangular matrix, `beta` the
    /// nonzero indices of the RHS.
    pub fn inspect(&self, l: &CscMatrix, beta: &[usize]) -> TriReachSet {
        let mut ws = ReachWorkspace::new(l.n_cols());
        let mut reach = Vec::new();
        reach_into(l, beta, &mut ws, &mut reach);
        TriReachSet { reach }
    }
}

impl SymbolicInspector for TriVIPruneInspector {
    type Set = TriReachSet;

    fn graph(&self) -> InspectionGraph {
        InspectionGraph::DependenceGraphWithRhs
    }

    fn strategy(&self) -> InspectionStrategy {
        InspectionStrategy::Dfs
    }

    fn enables(&self) -> &'static [EnabledTransformation] {
        &[
            EnabledTransformation::LoopDistribution,
            EnabledTransformation::Unroll,
            EnabledTransformation::Peel,
            EnabledTransformation::Vectorize,
        ]
    }
}

/// VS-Block inspector: node equivalence on `DG_L`.
pub struct TriVSBlockInspector;

impl TriVSBlockInspector {
    /// Run the inspection. `max_width` caps supernode width (0 =
    /// unlimited).
    pub fn inspect(&self, l: &CscMatrix, max_width: usize) -> TriBlockSet {
        TriBlockSet {
            partition: supernodes_trisolve(l, max_width),
        }
    }
}

impl SymbolicInspector for TriVSBlockInspector {
    type Set = TriBlockSet;

    fn graph(&self) -> InspectionGraph {
        InspectionGraph::DependenceGraph
    }

    fn strategy(&self) -> InspectionStrategy {
        InspectionStrategy::NodeEquivalence
    }

    fn enables(&self) -> &'static [EnabledTransformation] {
        &[
            EnabledTransformation::Tile,
            EnabledTransformation::Unroll,
            EnabledTransformation::Peel,
            EnabledTransformation::Vectorize,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen::random_lower_triangular;

    #[test]
    fn reach_set_is_topological_and_complete() {
        let l = random_lower_triangular(50, 3, 1);
        let set = TriVIPruneInspector.inspect(&l, &[0, 10]);
        assert!(!set.reach.is_empty());
        // Every beta member is in the set.
        assert!(set.reach.contains(&0));
        assert!(set.reach.contains(&10));
        // Topological: for each edge inside the set, source before sink.
        let pos: std::collections::HashMap<usize, usize> =
            set.reach.iter().enumerate().map(|(k, &j)| (j, k)).collect();
        for &j in &set.reach {
            for &i in &l.col_rows(j)[1..] {
                assert!(pos[&j] < pos[&i]);
            }
        }
    }

    #[test]
    fn block_set_partitions_columns() {
        let l = random_lower_triangular(40, 2, 2);
        let set = TriVSBlockInspector.inspect(&l, 0);
        assert_eq!(set.partition.n_cols(), 40);
    }

    #[test]
    fn block_set_respects_width_cap() {
        // Dense lower triangle merges fully without a cap.
        let n = 6;
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            for i in j..n {
                t.push(i, j, 1.0);
            }
        }
        let l = t.to_csc().unwrap();
        let unlimited = TriVSBlockInspector.inspect(&l, 0);
        assert_eq!(unlimited.partition.n_supernodes(), 1);
        let capped = TriVSBlockInspector.inspect(&l, 2);
        assert_eq!(capped.partition.n_supernodes(), 3);
    }
}
