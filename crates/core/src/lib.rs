//! # sympiler-core
//!
//! The Sympiler itself (SC'17): a domain-specific code generator that
//! **decouples symbolic analysis from numeric computation** for sparse
//! matrix kernels with static sparsity patterns.
//!
//! Pipeline (paper Figure 2):
//!
//! 1. [`inspector`] — compile-time *symbolic inspectors*: one per
//!    (numerical method × transformation) pair, each combining an
//!    inspection graph, an inspection strategy, and an inspection set
//!    (Table 1).
//! 2. [`lower`] — lowering the kernel into a domain-specific AST
//!    annotated with transformation candidates (Figure 2a).
//! 3. [`transform`] — the inspector-guided transformations **VI-Prune**
//!    (variable iteration-space pruning, Figure 3 top) and **VS-Block**
//!    (2-D variable-sized blocking, Figure 3 bottom), plus the enabled
//!    low-level transformations (peeling, unrolling, distribution,
//!    scalar replacement).
//! 4. [`emit`] — C code generation from the transformed AST (the
//!    paper's output artifact; golden-tested against Figure 1e's
//!    structure).
//! 5. [`plan`] — *executable plans*: the same inspection sets compiled
//!    into flat, pattern-specialized instruction streams executed by
//!    static Rust loops. This is the benchmarked "Sympiler (numeric)"
//!    code path (see DESIGN.md §2 for why this substitutes for running
//!    GCC on the emitted C). With the `parallel` feature, two plans
//!    additionally execute level-scheduled across threads:
//!    `plan::tri_parallel` (wavefronts of `DG_L`) and
//!    `plan::lu_parallel` (the column elimination DAG).
//! 6. [`compile`] — the user-facing driver: [`compile::SympilerTriSolve`]
//!    and [`compile::SympilerCholesky`].
//! 7. [`serve`] — the serving layer over the compiled pipeline: a
//!    structural-hash plan cache, batched factor/solve entry points,
//!    and a thread-pool front end for request streams.

pub mod ast;
pub mod compile;
pub mod emit;
pub mod inspector;
pub mod interp;
pub mod lower;
pub mod plan;
pub mod report;
pub mod robust;
pub mod serve;
pub mod transform;

pub use compile::{
    BlockLu, Ordering, PrePivot, SympilerCholesky, SympilerLu, SympilerOptions, SympilerTriSolve,
};
pub use plan::lu::{BatchError, LuWorkspace, PerturbReport, RefineReport};
pub use report::SymbolicReport;
pub use robust::{Recovered, RecoveryError, RecoveryPolicy, RobustLu, Rung};
pub use serve::{
    CacheConfig, CacheStats, CachedPlan, FactorService, PlanCache, ServeError, ServeRequest,
    ServeResponse, Ticket,
};
// Observability layer (spans, counters, health monitors) — re-exported
// so downstream users can drive profiling without naming the obs crate.
pub use sympiler_obs::{
    Event, EventJournal, Histogram, HistogramSummary, LuHealth, MetricsRegistry, MetricsSnapshot,
    Profile, Profiler, TraceFile,
};
