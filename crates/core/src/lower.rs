//! Lowering numerical methods into the initial annotated AST
//! (paper Figure 2a).
//!
//! The initial AST is generic over the sparsity pattern: it is the
//! textbook kernel, with annotations marking the loops that VI-Prune
//! and VS-Block may later specialize using inspection sets.

use crate::ast::{Annotation, AssignOp, Expr, Kernel, ParamType, Stmt};

/// The initial AST for sparse triangular solve (the paper's Figure 2a):
///
/// ```text
/// for j0 in 0..n {                 // VI-Prune, VS-Block candidates
///     x[j0] /= Lx[Lp[j0]];
///     for j1 in Lp[j0]+1 .. Lp[j0+1] {
///         x[Li[j1]] -= Lx[j1] * x[j0];
///     }
/// }
/// ```
pub fn lower_trisolve() -> Kernel {
    let j0 = || Expr::var("j0");
    let j1 = || Expr::var("j1");
    let inner = Stmt::Loop {
        var: "j1".into(),
        lo: Expr::add(Expr::idx("Lp", j0()), Expr::Int(1)),
        hi: Expr::idx("Lp", Expr::add(j0(), Expr::Int(1))),
        body: vec![Stmt::Assign {
            array: "x".into(),
            index: Expr::idx("Li", j1()),
            op: AssignOp::SubAssign,
            rhs: Expr::mul(Expr::idx("Lx", j1()), Expr::idx("x", j0())),
        }],
        annotations: vec![],
    };
    let outer = Stmt::Loop {
        var: "j0".into(),
        lo: Expr::Int(0),
        hi: Expr::var("n"),
        body: vec![
            Stmt::Assign {
                array: "x".into(),
                index: j0(),
                op: AssignOp::DivAssign,
                rhs: Expr::idx("Lx", Expr::idx("Lp", j0())),
            },
            inner,
        ],
        annotations: vec![
            Annotation::VIPruneCandidate {
                set: "pruneSet".into(),
            },
            Annotation::VSBlockCandidate {
                set: "blockSet".into(),
            },
        ],
    };
    Kernel {
        name: "trisolve".into(),
        params: vec![
            ("n".into(), ParamType::Int),
            ("Lp".into(), ParamType::IntArray),
            ("Li".into(), ParamType::IntArray),
            ("Lx".into(), ParamType::DoubleArray),
            ("x".into(), ParamType::DoubleArray),
        ],
        body: vec![outer],
    }
}

/// The initial AST for left-looking Cholesky (paper Figure 4), lowered
/// with the update loop marked VI-Prune-able (over the row pattern) and
/// the outer column loop marked VS-Block-able (over supernodes):
///
/// ```text
/// for k in 0..n {                       // VS-Block candidate
///     // f = A(:,k) gather
///     for p in Ap[k]..Ap[k+1] { f[Ai[p]] = Ax[p]; }
///     for r in 0..n {                   // VI-Prune candidate (update)
///         for p in Lp[r]..Lp[r+1] {
///             f[Li[p]] -= Lx[p] * lkr;
///         }
///     }
///     // column factorization
///     ...
/// }
/// ```
pub fn lower_cholesky() -> Kernel {
    let k = || Expr::var("k");
    let r = || Expr::var("r");
    let p = || Expr::var("p");
    let gather = Stmt::Loop {
        var: "p".into(),
        lo: Expr::idx("Ap", k()),
        hi: Expr::idx("Ap", Expr::add(k(), Expr::Int(1))),
        body: vec![Stmt::Assign {
            array: "f".into(),
            index: Expr::idx("Ai", p()),
            op: AssignOp::Set,
            rhs: Expr::idx("Ax", p()),
        }],
        annotations: vec![],
    };
    let update_inner = Stmt::Loop {
        var: "p".into(),
        lo: Expr::idx("Lp", r()),
        hi: Expr::idx("Lp", Expr::add(r(), Expr::Int(1))),
        body: vec![Stmt::Assign {
            array: "f".into(),
            index: Expr::idx("Li", p()),
            op: AssignOp::SubAssign,
            rhs: Expr::mul(Expr::idx("Lx", p()), Expr::var("lkr")),
        }],
        annotations: vec![],
    };
    let update = Stmt::Loop {
        var: "r".into(),
        lo: Expr::Int(0),
        hi: k(),
        body: vec![
            Stmt::Comment("lkr = L[k, r]".into()),
            Stmt::Let {
                name: "lkr".into(),
                rhs: Expr::idx("Lx", Expr::idx("LkPos", r())),
            },
            update_inner,
        ],
        annotations: vec![Annotation::VIPruneCandidate {
            set: "pruneSet".into(),
        }],
    };
    let col_factor = vec![
        Stmt::Comment("column factorization: diagonal".into()),
        Stmt::Assign {
            array: "Lx".into(),
            index: Expr::idx("Lp", k()),
            op: AssignOp::Set,
            rhs: Expr::idx("sqrtf", Expr::idx("f", k())),
        },
        Stmt::Loop {
            var: "p".into(),
            lo: Expr::add(Expr::idx("Lp", k()), Expr::Int(1)),
            hi: Expr::idx("Lp", Expr::add(k(), Expr::Int(1))),
            body: vec![Stmt::Assign {
                array: "Lx".into(),
                index: p(),
                op: AssignOp::Set,
                rhs: Expr::Bin(
                    crate::ast::BinOp::Div,
                    Box::new(Expr::idx("f", Expr::idx("Li", p()))),
                    Box::new(Expr::idx("Lx", Expr::idx("Lp", k()))),
                ),
            }],
            annotations: vec![],
        },
    ];
    let mut body = vec![gather, update];
    body.extend(col_factor);
    let outer = Stmt::Loop {
        var: "k".into(),
        lo: Expr::Int(0),
        hi: Expr::var("n"),
        body,
        annotations: vec![Annotation::VSBlockCandidate {
            set: "blockSet".into(),
        }],
    };
    Kernel {
        name: "cholesky_left_looking".into(),
        params: vec![
            ("n".into(), ParamType::Int),
            ("Ap".into(), ParamType::IntArray),
            ("Ai".into(), ParamType::IntArray),
            ("Ax".into(), ParamType::DoubleArray),
            ("Lp".into(), ParamType::IntArray),
            ("Li".into(), ParamType::IntArray),
            ("Lx".into(), ParamType::DoubleArray),
            ("LkPos".into(), ParamType::IntArray),
            ("f".into(), ParamType::DoubleArray),
        ],
        body: vec![outer],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{visit_loops, Annotation, Stmt};

    #[test]
    fn trisolve_ast_has_candidates_on_outer_loop() {
        let k = lower_trisolve();
        assert_eq!(k.body.len(), 1);
        match &k.body[0] {
            Stmt::Loop { annotations, .. } => {
                assert!(annotations
                    .iter()
                    .any(|a| matches!(a, Annotation::VIPruneCandidate { .. })));
                assert!(annotations
                    .iter()
                    .any(|a| matches!(a, Annotation::VSBlockCandidate { .. })));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn trisolve_ast_shape_matches_fig2a() {
        let k = lower_trisolve();
        let mut loops = 0;
        visit_loops(&k.body, &mut |_| loops += 1);
        assert_eq!(loops, 2, "outer column loop + inner update loop");
    }

    #[test]
    fn cholesky_ast_marks_update_loop() {
        let k = lower_cholesky();
        let mut prune_loops = 0;
        let mut block_loops = 0;
        visit_loops(&k.body, &mut |s| {
            if let Stmt::Loop { annotations, .. } = s {
                prune_loops += annotations
                    .iter()
                    .filter(|a| matches!(a, Annotation::VIPruneCandidate { .. }))
                    .count();
                block_loops += annotations
                    .iter()
                    .filter(|a| matches!(a, Annotation::VSBlockCandidate { .. }))
                    .count();
            }
        });
        assert_eq!(prune_loops, 1, "update loop is the VI-Prune candidate");
        assert_eq!(block_loops, 1, "outer loop is the VS-Block candidate");
    }

    #[test]
    fn kernels_have_csc_parameters() {
        let k = lower_trisolve();
        let names: Vec<&str> = k.params.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["n", "Lp", "Li", "Lx", "x"]);
    }
}
