//! The domain-specific AST Sympiler lowers kernels into (paper §2.1:
//! "Code implementing the numerical solver is represented in a
//! domain-specific abstract syntax tree (AST). Sympiler produces the
//! final code by applying a series of phases to this AST").
//!
//! The IR is deliberately small: loops with symbolic bounds, array
//! accesses with affine-plus-indirection indices, compound assignments,
//! and **annotations** marking where inspector-guided transformations
//! may apply (Figure 2a) and which low-level transformations later
//! phases should perform (Figure 2b).

/// Binary operators appearing in kernel expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Scalar/loop variable reference.
    Var(String),
    /// `array[index]`.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    pub fn idx(array: &str, index: Expr) -> Expr {
        Expr::Index(array.to_string(), Box::new(index))
    }

    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// Substitute every occurrence of variable `name` with `with`.
    pub fn substitute(&self, name: &str, with: &Expr) -> Expr {
        match self {
            Expr::Int(v) => Expr::Int(*v),
            Expr::Var(v) => {
                if v == name {
                    with.clone()
                } else {
                    Expr::Var(v.clone())
                }
            }
            Expr::Index(a, i) => Expr::Index(a.clone(), Box::new(i.substitute(name, with))),
            Expr::Bin(op, l, r) => Expr::Bin(
                *op,
                Box::new(l.substitute(name, with)),
                Box::new(r.substitute(name, with)),
            ),
        }
    }
}

/// Compound-assignment operators (`=`, `-=`, `/=`, `+=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    Set,
    SubAssign,
    DivAssign,
    AddAssign,
}

impl AssignOp {
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Set => "=",
            AssignOp::SubAssign => "-=",
            AssignOp::DivAssign => "/=",
            AssignOp::AddAssign => "+=",
        }
    }
}

/// Annotations attached to loops: transformation candidates (placed
/// during lowering, consumed by the transformation phases) and
/// low-level directives (placed by inspector-guided transformations,
/// consumed by code generation). Paper Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub enum Annotation {
    /// This loop's iteration space may be pruned with the named
    /// inspection set (Figure 2a `VI-Prune` marker).
    VIPruneCandidate { set: String },
    /// This loop nest may be blocked with the named block-set
    /// (Figure 2a `VS-Block` marker).
    VSBlockCandidate { set: String },
    /// Peel the listed iteration positions out of this loop
    /// (Figure 2b `peel(0,3)`).
    Peel(Vec<usize>),
    /// Unroll by the given factor.
    Unroll(usize),
    /// Mark vectorizable (Figure 2b `vec(0)`).
    Vectorize,
    /// Distribute this loop over its body statements.
    Distribute,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for var in lo..hi { body }` with annotations.
    Loop {
        var: String,
        lo: Expr,
        hi: Expr,
        body: Vec<Stmt>,
        annotations: Vec<Annotation>,
    },
    /// `lhs op rhs;` where `lhs` is an array element.
    Assign {
        array: String,
        index: Expr,
        op: AssignOp,
        rhs: Expr,
    },
    /// `let name = rhs;` (scalar temporary, e.g. `j0 = pruneSet[p0]`).
    Let { name: String, rhs: Expr },
    /// Free-form comment carried into the generated code.
    Comment(String),
}

impl Stmt {
    /// Substitute a variable in every expression of this statement.
    pub fn substitute(&self, name: &str, with: &Expr) -> Stmt {
        match self {
            Stmt::Loop {
                var,
                lo,
                hi,
                body,
                annotations,
            } => {
                if var == name {
                    // Shadowed; leave the loop untouched.
                    return self.clone();
                }
                Stmt::Loop {
                    var: var.clone(),
                    lo: lo.substitute(name, with),
                    hi: hi.substitute(name, with),
                    body: body.iter().map(|s| s.substitute(name, with)).collect(),
                    annotations: annotations.clone(),
                }
            }
            Stmt::Assign {
                array,
                index,
                op,
                rhs,
            } => Stmt::Assign {
                array: array.clone(),
                index: index.substitute(name, with),
                op: *op,
                rhs: rhs.substitute(name, with),
            },
            Stmt::Let { name: n, rhs } => Stmt::Let {
                name: n.clone(),
                rhs: rhs.substitute(name, with),
            },
            Stmt::Comment(c) => Stmt::Comment(c.clone()),
        }
    }
}

/// A whole kernel: a named function over named array parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    pub name: String,
    /// Parameter names in signature order (all `double*` / `int*` in C).
    pub params: Vec<(String, ParamType)>,
    pub body: Vec<Stmt>,
}

/// Parameter types for C emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamType {
    DoubleArray,
    IntArray,
    Int,
}

/// Walk all loops of a statement tree, calling `f` on each.
pub fn visit_loops<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        if let Stmt::Loop { body, .. } = s {
            f(s);
            visit_loops(body, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitute_in_expr() {
        // x[j] * L[j + 1] with j -> pruneSet[p]
        let e = Expr::mul(
            Expr::idx("x", Expr::var("j")),
            Expr::idx("L", Expr::add(Expr::var("j"), Expr::Int(1))),
        );
        let rep = Expr::idx("pruneSet", Expr::var("p"));
        let got = e.substitute("j", &rep);
        match got {
            Expr::Bin(BinOp::Mul, l, r) => {
                assert_eq!(*l, Expr::idx("x", Expr::idx("pruneSet", Expr::var("p"))));
                match *r {
                    Expr::Index(a, i) => {
                        assert_eq!(a, "L");
                        assert_eq!(
                            *i,
                            Expr::add(Expr::idx("pruneSet", Expr::var("p")), Expr::Int(1))
                        );
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn substitute_respects_shadowing() {
        let inner = Stmt::Loop {
            var: "j".into(),
            lo: Expr::Int(0),
            hi: Expr::var("n"),
            body: vec![Stmt::Assign {
                array: "x".into(),
                index: Expr::var("j"),
                op: AssignOp::Set,
                rhs: Expr::Int(0),
            }],
            annotations: vec![],
        };
        let replaced = inner.substitute("j", &Expr::Int(7));
        assert_eq!(replaced, inner, "shadowed variable must not be replaced");
    }

    #[test]
    fn visit_loops_finds_nested() {
        let ast = vec![Stmt::Loop {
            var: "i".into(),
            lo: Expr::Int(0),
            hi: Expr::Int(10),
            body: vec![Stmt::Loop {
                var: "j".into(),
                lo: Expr::Int(0),
                hi: Expr::var("i"),
                body: vec![],
                annotations: vec![Annotation::Vectorize],
            }],
            annotations: vec![],
        }];
        let mut count = 0;
        visit_loops(&ast, &mut |_| count += 1);
        assert_eq!(count, 2);
    }

    #[test]
    fn op_symbols() {
        assert_eq!(BinOp::Div.symbol(), "/");
        assert_eq!(AssignOp::SubAssign.symbol(), "-=");
    }
}
