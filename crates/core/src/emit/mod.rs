//! Code generation: the final lowering from the transformed AST (or an
//! executable plan) to C source text, the paper's output artifact.

pub mod c;

pub use c::{emit_kernel_c, emit_lu_c, emit_lu_supernodal_c, emit_trisolve_c};
