//! C emission.
//!
//! Two emitters:
//!
//! * [`emit_kernel_c`] — pretty-print any transformed AST kernel
//!   (annotations become pragmas/comments), demonstrating the generic
//!   Figure 2 pipeline;
//! * [`emit_trisolve_c`] — the **matrix-specialized** triangular-solve
//!   emitter reproducing Figure 1e: peeled columns become straight-line
//!   statements with concrete column-pointer constants; runs of
//!   non-peeled reach-set columns become compact loops over the
//!   embedded `reachSet` table.

use crate::ast::{Annotation, Expr, Kernel, ParamType, Stmt};
use std::fmt::Write as _;
use sympiler_sparse::CscMatrix;

fn emit_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(v) => out.push_str(v),
        Expr::Index(a, i) => {
            out.push_str(a);
            out.push('[');
            emit_expr(i, out);
            out.push(']');
        }
        Expr::Bin(op, l, r) => {
            out.push('(');
            emit_expr(l, out);
            let _ = write!(out, " {} ", op.symbol());
            emit_expr(r, out);
            out.push(')');
        }
    }
}

fn emit_stmt(s: &Stmt, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Comment(c) => {
            let _ = writeln!(out, "{pad}/* {c} */");
        }
        Stmt::Let { name, rhs } => {
            let _ = write!(out, "{pad}int {name} = ");
            emit_expr(rhs, out);
            out.push_str(";\n");
        }
        Stmt::Assign {
            array,
            index,
            op,
            rhs,
        } => {
            let _ = write!(out, "{pad}{array}[");
            emit_expr(index, out);
            let _ = write!(out, "] {} ", op.symbol());
            emit_expr(rhs, out);
            out.push_str(";\n");
        }
        Stmt::Loop {
            var,
            lo,
            hi,
            body,
            annotations,
        } => {
            for a in annotations {
                match a {
                    Annotation::Vectorize => {
                        let _ = writeln!(out, "{pad}#pragma omp simd");
                    }
                    Annotation::Unroll(f) => {
                        let _ = writeln!(out, "{pad}#pragma GCC unroll {f}");
                    }
                    Annotation::Peel(p) => {
                        let _ = writeln!(out, "{pad}/* peel: {p:?} */");
                    }
                    Annotation::Distribute => {
                        let _ = writeln!(out, "{pad}/* distribute */");
                    }
                    Annotation::VIPruneCandidate { set } => {
                        let _ = writeln!(out, "{pad}/* VI-Prune candidate: {set} */");
                    }
                    Annotation::VSBlockCandidate { set } => {
                        let _ = writeln!(out, "{pad}/* VS-Block candidate: {set} */");
                    }
                }
            }
            let _ = write!(out, "{pad}for (int {var} = ");
            emit_expr(lo, out);
            let _ = write!(out, "; {var} < ");
            emit_expr(hi, out);
            let _ = writeln!(out, "; {var}++) {{");
            for st in body {
                emit_stmt(st, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// Emit a transformed AST kernel as a C function.
pub fn emit_kernel_c(kernel: &Kernel) -> String {
    let mut out = String::new();
    let params: Vec<String> = kernel
        .params
        .iter()
        .map(|(name, ty)| match ty {
            ParamType::Int => format!("int {name}"),
            ParamType::IntArray => format!("const int *{name}"),
            ParamType::DoubleArray => format!("double *{name}"),
        })
        .collect();
    let _ = writeln!(out, "void {}({}) {{", kernel.name, params.join(", "));
    for s in &kernel.body {
        emit_stmt(s, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

/// Emit matrix-specialized triangular-solve C (Figure 1e).
///
/// `reach` must be in a valid topological order; columns whose
/// off-diagonal count exceeds `peel_col_count` are peeled into
/// straight-line code with concrete constants taken from `l`'s column
/// pointers, exactly like the paper's example (threshold 2 there).
pub fn emit_trisolve_c(l: &CscMatrix, reach: &[usize], peel_col_count: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "/* Sympiler-generated sparse triangular solve");
    let _ = writeln!(
        out,
        "   specialized for one {}x{} pattern, reach-set size {} */",
        l.n_rows(),
        l.n_cols(),
        reach.len()
    );
    // Embed the reach set as static data.
    let set: Vec<String> = reach.iter().map(|j| j.to_string()).collect();
    let _ = writeln!(
        out,
        "static const int reachSet[{}] = {{{}}};",
        reach.len(),
        set.join(", ")
    );
    let _ = writeln!(
        out,
        "void trisolve_specialized(const int *Lp, const int *Li, const double *Lx, double *x) {{"
    );
    let mut px = 0usize;
    while px < reach.len() {
        let j = reach[px];
        // Peel columns with more than `peel_col_count` stored nonzeros
        // (the paper's Figure 1e: "columns within the reach-set with
        // more than 2 nonzeros").
        if l.col_nnz(j) > peel_col_count {
            // Peeled: concrete constants, like "x[7] /= Lx[20];".
            let start = l.col_ptr()[j];
            let end = l.col_ptr()[j + 1];
            let _ = writeln!(out, "  x[{j}] /= Lx[{start}]; /* peel col {j} */");
            let _ = writeln!(out, "  #pragma omp simd");
            let _ = writeln!(out, "  for (int p = {}; p < {end}; p++)", start + 1);
            let _ = writeln!(out, "    x[Li[p]] -= Lx[p] * x[{j}];");
            px += 1;
        } else {
            // A run of non-peeled columns: loop over reachSet[px..run).
            let run_start = px;
            while px < reach.len() && l.col_nnz(reach[px]) <= peel_col_count {
                px += 1;
            }
            let _ = writeln!(out, "  for (int px = {run_start}; px < {px}; px++) {{");
            let _ = writeln!(out, "    int j = reachSet[px];");
            let _ = writeln!(out, "    x[j] /= Lx[Lp[j]];");
            let _ = writeln!(out, "    for (int p = Lp[j] + 1; p < Lp[j + 1]; p++)");
            let _ = writeln!(out, "      x[Li[p]] -= Lx[p] * x[j];");
            let _ = writeln!(out, "  }}");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_trisolve;
    use crate::transform::{apply_vi_prune, apply_vs_block};

    #[test]
    fn emits_initial_trisolve() {
        let c = emit_kernel_c(&lower_trisolve());
        assert!(c.contains("void trisolve(int n, const int *Lp"));
        assert!(c.contains("x[j0] /= Lx[Lp[j0]];"));
        assert!(c.contains("x[Li[j1]] -= (Lx[j1] * x[j0]);"));
        assert!(c.contains("/* VI-Prune candidate: pruneSet */"));
    }

    #[test]
    fn emits_pruned_trisolve_fig2b_shape() {
        let mut k = lower_trisolve();
        apply_vi_prune(&mut k, "pruneSet", "pruneSetSize");
        let c = emit_kernel_c(&k);
        assert!(c.contains("for (int p_j0 = 0; p_j0 < pruneSetSize; p_j0++)"));
        assert!(c.contains("int j0_p = pruneSet[p_j0];"));
        assert!(!c.contains("VI-Prune candidate"), "candidate consumed");
    }

    #[test]
    fn emits_blocked_trisolve() {
        let mut k = lower_trisolve();
        apply_vs_block(&mut k, "dense_trsv", "dense_gemv");
        let c = emit_kernel_c(&k);
        assert!(c.contains("for (int b = 0; b < blockSetSize; b++)"));
        assert!(c.contains("dense_trsv"));
    }

    #[test]
    fn pragma_emission() {
        let mut k = lower_trisolve();
        crate::transform::low_level::annotate_unroll(&mut k.body, 4);
        crate::transform::low_level::annotate_vectorize(
            &mut k.body,
            &[("j1".into(), 100)],
            8,
        );
        let c = emit_kernel_c(&k);
        assert!(c.contains("#pragma GCC unroll 4"));
        assert!(c.contains("#pragma omp simd"));
    }
}
