//! C emission.
//!
//! Two emitters:
//!
//! * [`emit_kernel_c`] — pretty-print any transformed AST kernel
//!   (annotations become pragmas/comments), demonstrating the generic
//!   Figure 2 pipeline;
//! * [`emit_trisolve_c`] — the **matrix-specialized** triangular-solve
//!   emitter reproducing Figure 1e: peeled columns become straight-line
//!   statements with concrete column-pointer constants; runs of
//!   non-peeled reach-set columns become compact loops over the
//!   embedded `reachSet` table.

use crate::ast::{Annotation, Expr, Kernel, ParamType, Stmt};
use std::fmt::Write as _;
use sympiler_sparse::CscMatrix;

fn emit_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(v) => out.push_str(v),
        Expr::Index(a, i) => {
            out.push_str(a);
            out.push('[');
            emit_expr(i, out);
            out.push(']');
        }
        Expr::Bin(op, l, r) => {
            out.push('(');
            emit_expr(l, out);
            let _ = write!(out, " {} ", op.symbol());
            emit_expr(r, out);
            out.push(')');
        }
    }
}

fn emit_stmt(s: &Stmt, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Comment(c) => {
            let _ = writeln!(out, "{pad}/* {c} */");
        }
        Stmt::Let { name, rhs } => {
            let _ = write!(out, "{pad}int {name} = ");
            emit_expr(rhs, out);
            out.push_str(";\n");
        }
        Stmt::Assign {
            array,
            index,
            op,
            rhs,
        } => {
            let _ = write!(out, "{pad}{array}[");
            emit_expr(index, out);
            let _ = write!(out, "] {} ", op.symbol());
            emit_expr(rhs, out);
            out.push_str(";\n");
        }
        Stmt::Loop {
            var,
            lo,
            hi,
            body,
            annotations,
        } => {
            for a in annotations {
                match a {
                    Annotation::Vectorize => {
                        let _ = writeln!(out, "{pad}#pragma omp simd");
                    }
                    Annotation::Unroll(f) => {
                        let _ = writeln!(out, "{pad}#pragma GCC unroll {f}");
                    }
                    Annotation::Peel(p) => {
                        let _ = writeln!(out, "{pad}/* peel: {p:?} */");
                    }
                    Annotation::Distribute => {
                        let _ = writeln!(out, "{pad}/* distribute */");
                    }
                    Annotation::VIPruneCandidate { set } => {
                        let _ = writeln!(out, "{pad}/* VI-Prune candidate: {set} */");
                    }
                    Annotation::VSBlockCandidate { set } => {
                        let _ = writeln!(out, "{pad}/* VS-Block candidate: {set} */");
                    }
                }
            }
            let _ = write!(out, "{pad}for (int {var} = ");
            emit_expr(lo, out);
            let _ = write!(out, "; {var} < ");
            emit_expr(hi, out);
            let _ = writeln!(out, "; {var}++) {{");
            for st in body {
                emit_stmt(st, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// Emit a transformed AST kernel as a C function.
pub fn emit_kernel_c(kernel: &Kernel) -> String {
    let mut out = String::new();
    let params: Vec<String> = kernel
        .params
        .iter()
        .map(|(name, ty)| match ty {
            ParamType::Int => format!("int {name}"),
            ParamType::IntArray => format!("const int *{name}"),
            ParamType::DoubleArray => format!("double *{name}"),
        })
        .collect();
    let _ = writeln!(out, "void {}({}) {{", kernel.name, params.join(", "));
    for s in &kernel.body {
        emit_stmt(s, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

/// Emit matrix-specialized triangular-solve C (Figure 1e).
///
/// `reach` must be in a valid topological order; columns whose
/// off-diagonal count exceeds `peel_col_count` are peeled into
/// straight-line code with concrete constants taken from `l`'s column
/// pointers, exactly like the paper's example (threshold 2 there).
pub fn emit_trisolve_c(l: &CscMatrix, reach: &[usize], peel_col_count: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "/* Sympiler-generated sparse triangular solve");
    let _ = writeln!(
        out,
        "   specialized for one {}x{} pattern, reach-set size {} */",
        l.n_rows(),
        l.n_cols(),
        reach.len()
    );
    // Embed the reach set as static data.
    let set: Vec<String> = reach.iter().map(|j| j.to_string()).collect();
    let _ = writeln!(
        out,
        "static const int reachSet[{}] = {{{}}};",
        reach.len(),
        set.join(", ")
    );
    let _ = writeln!(
        out,
        "void trisolve_specialized(const int *Lp, const int *Li, const double *Lx, double *x) {{"
    );
    let mut px = 0usize;
    while px < reach.len() {
        let j = reach[px];
        // Peel columns with more than `peel_col_count` stored nonzeros
        // (the paper's Figure 1e: "columns within the reach-set with
        // more than 2 nonzeros").
        if l.col_nnz(j) > peel_col_count {
            // Peeled: concrete constants, like "x[7] /= Lx[20];".
            let start = l.col_ptr()[j];
            let end = l.col_ptr()[j + 1];
            let _ = writeln!(out, "  x[{j}] /= Lx[{start}]; /* peel col {j} */");
            let _ = writeln!(out, "  #pragma omp simd");
            let _ = writeln!(out, "  for (int p = {}; p < {end}; p++)", start + 1);
            let _ = writeln!(out, "    x[Li[p]] -= Lx[p] * x[{j}];");
            px += 1;
        } else {
            // A run of non-peeled columns: loop over reachSet[px..run).
            let run_start = px;
            while px < reach.len() && l.col_nnz(reach[px]) <= peel_col_count {
                px += 1;
            }
            let _ = writeln!(out, "  for (int px = {run_start}; px < {px}; px++) {{");
            let _ = writeln!(out, "    int j = reachSet[px];");
            let _ = writeln!(out, "    x[j] /= Lx[Lp[j]];");
            let _ = writeln!(out, "    for (int p = Lp[j] + 1; p < Lp[j + 1]; p++)");
            let _ = writeln!(out, "      x[Li[p]] -= Lx[p] * x[j];");
            let _ = writeln!(out, "  }}");
        }
    }
    out.push_str("}\n");
    out
}

/// Emit one column's epilogue (gather `U(:, j)`, pivot, scale
/// `L(:, j)`, clear the accumulator) with concrete constants.
fn emit_lu_col_epilogue(out: &mut String, j: usize, l: &CscMatrix, u_col_ptr: &[usize]) {
    let (us, ue) = (u_col_ptr[j], u_col_ptr[j + 1]);
    let (ls, le) = (l.col_ptr()[j], l.col_ptr()[j + 1]);
    let _ = writeln!(out, "  for (int p = {us}; p < {ue}; p++) Ux[p] = x[Ui[p]];");
    let _ = writeln!(out, "  double pivot = Ux[{}];", ue - 1);
    let _ = writeln!(out, "  Lx[{ls}] = 1.0;");
    let _ = writeln!(
        out,
        "  for (int p = {}; p < {le}; p++) Lx[p] = x[Li[p]] / pivot;",
        ls + 1
    );
    let _ = writeln!(out, "  for (int p = {us}; p < {ue}; p++) x[Ui[p]] = 0.0;");
    let _ = writeln!(
        out,
        "  for (int p = {}; p < {le}; p++) x[Li[p]] = 0.0;",
        ls + 1
    );
}

/// Emit matrix-specialized left-looking LU factorization C — the LU
/// analogue of Figure 1e.
///
/// `schedules[j]` lists column `j`'s updates in topological order as
/// `(source column, peeled)` pairs, exactly as the plan compiled them.
/// Columns containing any peeled update become straight-line
/// `lu_col_{j}` specializations with concrete column-pointer constants
/// and unroll pragmas, invoked from the driver; runs of plain columns
/// execute through compact loops over the embedded `updateSet` tables.
/// `l` carries the predicted pattern of the factor (values unused);
/// `u_col_ptr` the predicted `U` layout.
///
/// `perm` is the plan's baked permutation pair `(cperm, irperm)`: the
/// column gather map (`cperm[new] = old`, the fill-reducing ordering
/// `Q`) and the **inverse row** map (`irperm[old] = new`, the
/// composition of the static pre-pivot `P` with `Q`, inverted), or
/// `None` when nothing is baked. The two maps coincide-modulo-inverse
/// under an ordering alone; a pre-pivot makes them genuinely
/// independent. Like the Rust numeric phase, the emitted kernel takes
/// the **original** matrix (`Ap`/`Ai`/`Ax`) and applies the
/// permutations inside the scatter — column `j` of the compiled
/// system reads column `cperm[j]` with rows mapped through `irperm`,
/// via embedded `colPerm`/`rowNewOf` tables.
///
/// `scaling` is the plan's compiled MC64 equilibration pair
/// `(Dr, Dc)` in **original** coordinates, or `None` when scaling is
/// off. Like the permutations, the scalings fold into the scatter —
/// every read of `Ax[p]` becomes `rowScale[Ai[p]] * Ax[p] *
/// colScale[c]` via embedded tables, so the emitted kernel factors
/// the equilibrated system at zero extra passes, exactly mirroring
/// the Rust numeric phase.
pub fn emit_lu_c(
    l: &CscMatrix,
    u_col_ptr: &[usize],
    schedules: &[Vec<(usize, bool)>],
    perm: Option<(&[usize], &[usize])>,
    scaling: Option<(&[f64], &[f64])>,
) -> String {
    let n = l.n_cols();
    let n_updates: usize = schedules.iter().map(|s| s.len()).sum();
    let peeled_cols: Vec<bool> = schedules
        .iter()
        .map(|s| s.iter().any(|&(_, p)| p))
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "/* Sympiler-generated sparse LU (Gilbert-Peierls)");
    let _ = writeln!(
        out,
        "   specialized for one {n}x{n} pattern: nnz(L) = {}, nnz(U) = {}, {} updates, {} peeled columns */",
        l.nnz(),
        u_col_ptr[n],
        n_updates,
        peeled_cols.iter().filter(|&&p| p).count()
    );
    // Flattened per-column schedules as static data (used by the
    // non-peeled runs).
    let mut ptr = Vec::with_capacity(n + 1);
    let mut flat: Vec<String> = Vec::with_capacity(n_updates);
    ptr.push(0usize);
    for s in schedules {
        flat.extend(s.iter().map(|(k, _)| k.to_string()));
        ptr.push(flat.len());
    }
    let ptr_s: Vec<String> = ptr.iter().map(|p| p.to_string()).collect();
    let _ = writeln!(
        out,
        "static const int updatePtr[{}] = {{{}}};",
        n + 1,
        ptr_s.join(", ")
    );
    let _ = writeln!(
        out,
        "static const int updateSet[{}] = {{{}}};",
        flat.len().max(1),
        if flat.is_empty() {
            "0".to_string()
        } else {
            flat.join(", ")
        }
    );
    // Baked ordering tables: the scatter of the original A(:, colPerm[j])
    // lands each row i at ordered position rowNewOf[i].
    if let Some((p, ip)) = perm {
        let ps: Vec<String> = p.iter().map(|v| v.to_string()).collect();
        let ips: Vec<String> = ip.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(
            out,
            "static const int colPerm[{}] = {{{}}}; /* perm[new] = old */",
            n.max(1),
            if ps.is_empty() {
                "0".into()
            } else {
                ps.join(", ")
            }
        );
        let _ = writeln!(
            out,
            "static const int rowNewOf[{}] = {{{}}}; /* iperm[old] = new */",
            n.max(1),
            if ips.is_empty() {
                "0".into()
            } else {
                ips.join(", ")
            }
        );
    }
    // MC64 equilibration tables (original coordinates): the scatter
    // multiplies entries by rowScale[row]·colScale[col] on the fly.
    if let Some((dr, dc)) = scaling {
        for (name, vals) in [("rowScale", dr), ("colScale", dc)] {
            let vs: Vec<String> = vals.iter().map(|v| format!("{v:.17e}")).collect();
            let _ = writeln!(
                out,
                "static const double {name}[{}] = {{{}}}; /* MC64 {} */",
                n.max(1),
                if vs.is_empty() {
                    "1.0".into()
                } else {
                    vs.join(", ")
                },
                if name == "rowScale" { "Dr" } else { "Dc" }
            );
        }
    }
    // One scatter expression shape everywhere, scaled or not.
    let ax_of = |row_expr: &str, col_expr: &str| -> String {
        match scaling {
            None => "Ax[p]".into(),
            Some(_) => format!("rowScale[{row_expr}] * Ax[p] * colScale[{col_expr}]"),
        }
    };
    let params = "const int *Ap, const int *Ai, const double *Ax,\n    \
                  const int *Li, double *Lx, const int *Ui, double *Ux, double *x";
    let args = "Ap, Ai, Ax, Li, Lx, Ui, Ux, x";
    // Straight-line specializations for the peeled columns, emitted
    // first so the driver can call them (the low-level tier of the
    // plan, Figure 1e's rule applied to factorization updates).
    for (j, s) in schedules.iter().enumerate() {
        if !peeled_cols[j] {
            continue;
        }
        let _ = writeln!(
            out,
            "\n/* peeled column {j}: {} updates inlined */",
            s.len()
        );
        let _ = writeln!(out, "static void lu_col_{j}({params}) {{");
        match perm {
            None => {
                let _ = writeln!(
                    out,
                    "  for (int p = Ap[{j}]; p < Ap[{}]; p++) x[Ai[p]] = {};",
                    j + 1,
                    ax_of("Ai[p]", &j.to_string())
                );
            }
            Some((p, _)) => {
                // The source column is a compile-time constant.
                let old_j = p[j];
                let _ = writeln!(
                    out,
                    "  for (int p = Ap[{old_j}]; p < Ap[{}]; p++) x[rowNewOf[Ai[p]]] = {};",
                    old_j + 1,
                    ax_of("Ai[p]", &old_j.to_string())
                );
            }
        }
        for &(k, peeled) in s {
            let start = l.col_ptr()[k];
            let end = l.col_ptr()[k + 1];
            if peeled {
                // Heavy update: no zero guard, unrolled.
                let _ = writeln!(out, "  {{ double xk = x[{k}];");
                let _ = writeln!(out, "    #pragma GCC unroll 2");
                let _ = writeln!(out, "    for (int p = {}; p < {end}; p++)", start + 1);
                let _ = writeln!(out, "      x[Li[p]] -= Lx[p] * xk; }}");
            } else {
                let _ = writeln!(out, "  {{ double xk = x[{k}];");
                let _ = writeln!(
                    out,
                    "    if (xk != 0.0) for (int p = {}; p < {end}; p++)",
                    start + 1
                );
                let _ = writeln!(out, "      x[Li[p]] -= Lx[p] * xk; }}");
            }
        }
        emit_lu_col_epilogue(&mut out, j, l, u_col_ptr);
        out.push_str("}\n");
    }
    // The driver: peeled columns call their specialization; runs of
    // plain columns loop over the embedded tables.
    let _ = writeln!(out, "\nvoid lu_factor_specialized({params},");
    let _ = writeln!(
        out,
        "                           const int *Lp, const int *Up) {{"
    );
    let mut j = 0usize;
    while j < n {
        if peeled_cols[j] {
            let _ = writeln!(out, "  lu_col_{j}({args});");
            j += 1;
            continue;
        }
        let run_start = j;
        while j < n && !peeled_cols[j] {
            j += 1;
        }
        let _ = writeln!(out, "  for (int j = {run_start}; j < {j}; j++) {{");
        if perm.is_none() {
            let _ = writeln!(out, "    /* scatter A(:,j) */");
            let _ = writeln!(out, "    for (int p = Ap[j]; p < Ap[j + 1]; p++)");
            let _ = writeln!(out, "      x[Ai[p]] = {};", ax_of("Ai[p]", "j"));
        } else {
            let _ = writeln!(out, "    /* scatter A(:, colPerm[j]) into ordered rows */");
            let _ = writeln!(out, "    int cj = colPerm[j];");
            let _ = writeln!(out, "    for (int p = Ap[cj]; p < Ap[cj + 1]; p++)");
            let _ = writeln!(out, "      x[rowNewOf[Ai[p]]] = {};", ax_of("Ai[p]", "cj"));
        }
        let _ = writeln!(
            out,
            "    /* baked update schedule (VI-Prune, topological) */"
        );
        let _ = writeln!(
            out,
            "    for (int t = updatePtr[j]; t < updatePtr[j + 1]; t++) {{"
        );
        let _ = writeln!(out, "      int k = updateSet[t];");
        let _ = writeln!(out, "      double xk = x[k];");
        let _ = writeln!(out, "      if (xk != 0.0)");
        let _ = writeln!(out, "        for (int p = Lp[k] + 1; p < Lp[k + 1]; p++)");
        let _ = writeln!(out, "          x[Li[p]] -= Lx[p] * xk;");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "    /* gather U(:,j), pivot, scale L(:,j) */");
        let _ = writeln!(out, "    for (int p = Up[j]; p < Up[j + 1]; p++)");
        let _ = writeln!(out, "      Ux[p] = x[Ui[p]];");
        let _ = writeln!(out, "    double pivot = Ux[Up[j + 1] - 1];");
        let _ = writeln!(out, "    Lx[Lp[j]] = 1.0;");
        let _ = writeln!(out, "    for (int p = Lp[j] + 1; p < Lp[j + 1]; p++)");
        let _ = writeln!(out, "      Lx[p] = x[Li[p]] / pivot;");
        let _ = writeln!(
            out,
            "    for (int p = Up[j]; p < Up[j + 1]; p++) x[Ui[p]] = 0.0;"
        );
        let _ = writeln!(
            out,
            "    for (int p = Lp[j] + 1; p < Lp[j + 1]; p++) x[Li[p]] = 0.0;"
        );
        let _ = writeln!(out, "  }}");
    }
    out.push_str("}\n");
    out
}

/// Emit the matrix-specialized **supernodal** LU factorization C — the
/// VS-Block artifact for LU (§3.2 applied to Gilbert–Peierls). Wide
/// panels call the dense mini-BLAS the way Sympiler-generated
/// supernodal Cholesky does (`dense_potrf`/`dense_trsm` there,
/// `dense_getrf`/`dense_trsm`/`dense_gemm` here); singleton panels keep
/// the scalar column loop. The panel table (`panelSet`) is embedded as
/// static data, like `blockSet` in the Cholesky artifact and
/// `reachSet` in Figure 1e.
///
/// `panels` is the compiled panel layout — partition plus per-panel
/// union row lists, which for relaxed (amalgamated) panels are wider
/// than any single member column's pattern and carry explicit padded
/// zeros; `n_wide` / `dense_share` are the compile-time panel
/// statistics quoted in the header comment.
pub fn emit_lu_supernodal_c(
    panels: &sympiler_graph::lu_supernode::LuPanels,
    n_wide: usize,
    dense_share: f64,
) -> String {
    let part = &panels.part;
    let n = part.n_cols();
    let n_panels = part.n_supernodes();
    let mut out = String::new();
    let _ = writeln!(out, "/* Sympiler-generated supernodal sparse LU (VS-Block)");
    let _ = writeln!(
        out,
        "   specialized for one {n}x{n} pattern: {n_panels} panels ({n_wide} wide, mean width {:.2}),",
        if n_panels == 0 { 0.0 } else { n as f64 / n_panels as f64 }
    );
    let _ = writeln!(
        out,
        "   {:.1}% of factorization flops in dense kernels, {} amalgamation-padded zeros */",
        dense_share * 100.0,
        panels.padded_zeros
    );
    let firsts: Vec<String> = part.first_col.iter().map(|c| c.to_string()).collect();
    let _ = writeln!(
        out,
        "static const int panelSet[{}] = {{{}}};",
        firsts.len(),
        firsts.join(", ")
    );
    let _ = writeln!(out, "static const int panelSetSize = {n_panels};");
    // Trapezoid storage offsets, mirroring the Rust engine's `sx`
    // layout: wide panel s owns the dense column-major m x w block
    // `SX[sxPtr[s] .. sxPtr[s] + m*w]` — CSC `Lx` packs nesting
    // columns with *shrinking* lengths, so it cannot double as a
    // constant-stride dense block. `m` is the panel's **union** row
    // count: for relaxed panels this exceeds any single column's CSC
    // length, the extra slots holding the amalgamation's explicit
    // zeros.
    let mut sx_ptr = Vec::with_capacity(n_panels + 1);
    sx_ptr.push(0usize);
    for s in 0..n_panels {
        let w = part.width(s);
        let m = panels.panel_rows(s).len();
        sx_ptr.push(sx_ptr[s] + if w > 1 { m * w } else { 0 });
    }
    let _ = writeln!(
        out,
        "static const int sxSize = {}; /* doubles of supernodal trapezoid storage (SX) */",
        sx_ptr[n_panels]
    );
    let _ = writeln!(
        out,
        "\nvoid lu_supernodal_specialized(const int *Ap, const int *Ai, const double *Ax,\n    \
         const int *Lp, const int *Li, double *Lx,\n    \
         const int *Up, const int *Ui, double *Ux, double *X, double *SX) {{"
    );
    let mut s = 0usize;
    while s < n_panels {
        let f = part.first_col[s];
        let w = part.width(s);
        if w == 1 {
            // A run of singleton panels: the scalar column loop.
            while s < n_panels && part.width(s) == 1 {
                s += 1;
            }
            let hi = part.first_col[s];
            let _ = writeln!(out, "  for (int j = {f}; j < {hi}; j++) {{");
            let _ = writeln!(out, "    /* scalar column: scatter, update, gather */");
            let _ = writeln!(
                out,
                "    lu_column_scalar(j, Ap, Ai, Ax, Lp, Li, Lx, Up, Ui, Ux, X);"
            );
            let _ = writeln!(out, "  }}");
            continue;
        }
        let m = panels.panel_rows(s).len();
        let _ = writeln!(
            out,
            "  /* panel {s}: columns {f}..{} as a {m}x{w} trapezoid */",
            f + w
        );
        let _ = writeln!(out, "  {{");
        let _ = writeln!(
            out,
            "    lu_panel_scatter({f}, {w}, Ap, Ai, Ax, X); /* block accumulator */"
        );
        let _ = writeln!(
            out,
            "    lu_panel_updates({s}, panelSet, Lp, Li, Lx, SX, X); /* dense_trsm + dense_gemm per source panel */"
        );
        let _ = writeln!(
            out,
            "    double *W = SX + {}; /* this panel's dense trapezoid */",
            sx_ptr[s]
        );
        let _ = writeln!(
            out,
            "    lu_panel_pack({f}, {w}, {m}, Lp, Li, X, W); /* accumulator rows -> trapezoid */"
        );
        let _ = writeln!(
            out,
            "    dense_getrf({w}, W, {m}); /* diagonal block, no pivoting */"
        );
        if m > w {
            let _ = writeln!(
                out,
                "    dense_trsm_right_upper({}, {w}, W, {m}, W + {w}, {m}); /* panel solve */",
                m - w
            );
        }
        let _ = writeln!(
            out,
            "    lu_panel_gather({f}, {w}, {m}, W, Lp, Li, Lx, Up, Ui, Ux, X); /* fixed CSC layouts */"
        );
        let _ = writeln!(out, "  }}");
        s += 1;
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_trisolve;
    use crate::transform::{apply_vi_prune, apply_vs_block};

    #[test]
    fn emits_initial_trisolve() {
        let c = emit_kernel_c(&lower_trisolve());
        assert!(c.contains("void trisolve(int n, const int *Lp"));
        assert!(c.contains("x[j0] /= Lx[Lp[j0]];"));
        assert!(c.contains("x[Li[j1]] -= (Lx[j1] * x[j0]);"));
        assert!(c.contains("/* VI-Prune candidate: pruneSet */"));
    }

    #[test]
    fn emits_pruned_trisolve_fig2b_shape() {
        let mut k = lower_trisolve();
        apply_vi_prune(&mut k, "pruneSet", "pruneSetSize");
        let c = emit_kernel_c(&k);
        assert!(c.contains("for (int p_j0 = 0; p_j0 < pruneSetSize; p_j0++)"));
        assert!(c.contains("int j0_p = pruneSet[p_j0];"));
        assert!(!c.contains("VI-Prune candidate"), "candidate consumed");
    }

    #[test]
    fn emits_blocked_trisolve() {
        let mut k = lower_trisolve();
        apply_vs_block(&mut k, "dense_trsv", "dense_gemv");
        let c = emit_kernel_c(&k);
        assert!(c.contains("for (int b = 0; b < blockSetSize; b++)"));
        assert!(c.contains("dense_trsv"));
    }

    #[test]
    fn emits_specialized_lu() {
        let a = sympiler_sparse::gen::convection_diffusion_2d(4, 4, 1.0, 1);
        let sym = sympiler_graph::lu_symbolic(&a);
        let l = CscMatrix::from_parts_unchecked(
            16,
            16,
            sym.l_col_ptr.clone(),
            sym.l_row_idx.clone(),
            vec![1.0; sym.l_nnz()],
        );
        // Peel rule matching the plan: updates whose source column has
        // more than 2 off-diagonal entries take the unrolled tier.
        let schedules: Vec<Vec<(usize, bool)>> = (0..16)
            .map(|j| {
                sym.reach(j)
                    .iter()
                    .map(|&k| (k, sym.l_col_pattern(k).len() - 1 > 2))
                    .collect()
            })
            .collect();
        let c = emit_lu_c(&l, &sym.u_col_ptr, &schedules, None, None);
        assert!(c.contains("lu_factor_specialized"));
        assert!(c.contains("updateSet"));
        assert!(c.contains("updatePtr"));
        assert!(!c.contains("colPerm"), "natural order embeds no tables");
        assert!(!c.contains("rowScale"), "unscaled embeds no scale tables");
        // With a baked ordering the scatter must route through the
        // embedded permutation tables.
        let n = l.n_cols();
        let perm: Vec<usize> = (0..n).rev().collect();
        let iperm: Vec<usize> = (0..n).rev().collect();
        let cp = emit_lu_c(&l, &sym.u_col_ptr, &schedules, Some((&perm, &iperm)), None);
        assert!(cp.contains("colPerm"));
        assert!(cp.contains("rowNewOf[Ai[p]]"));
        // With compiled MC64 scaling the scatter multiplies through
        // the embedded Dr/Dc tables.
        let dr = vec![0.5; n];
        let dc = vec![2.0; n];
        let cs = emit_lu_c(
            &l,
            &sym.u_col_ptr,
            &schedules,
            Some((&perm, &iperm)),
            Some((&dr, &dc)),
        );
        assert!(cs.contains("static const double rowScale"));
        assert!(cs.contains("static const double colScale"));
        assert!(cs.contains("rowScale[Ai[p]] * Ax[p] * colScale[cj]"));
        // Peeled columns become dedicated functions *called* from the
        // driver (not dead code).
        for (j, s) in schedules.iter().enumerate() {
            if s.iter().any(|&(_, p)| p) {
                assert!(
                    c.contains(&format!("static void lu_col_{j}(")),
                    "missing specialization for column {j}"
                );
                assert!(
                    c.contains(&format!("lu_col_{j}(Ap, Ai, Ax, Li, Lx, Ui, Ux, x);")),
                    "driver never calls lu_col_{j}"
                );
            }
        }
        assert!(
            schedules.iter().any(|s| s.iter().any(|&(_, p)| p)),
            "test matrix must exercise the peeled tier"
        );
    }

    #[test]
    fn emits_supernodal_lu() {
        // Columns 0, 1 nest with a shared sub-diagonal row (a true
        // trapezoid, rows > width), the rest stay singletons.
        let mut t = sympiler_sparse::TripletMatrix::new(6, 6);
        for j in 0..6 {
            t.push(j, j, 4.0);
        }
        t.push(1, 0, 1.0);
        t.push(5, 0, 1.0);
        t.push(5, 1, 1.0);
        let a = t.to_csc().unwrap();
        let sym = sympiler_graph::lu_symbolic(&a);
        let part = sympiler_graph::lu_supernode::supernodes_lu(&sym, 0);
        assert!(
            (0..part.n_supernodes()).any(|s| part.width(s) > 1),
            "test pattern must block"
        );
        let share = sympiler_graph::lu_supernode::flop_share_in_wide_panels(&sym, &part);
        let n_wide = (0..part.n_supernodes())
            .filter(|&s| part.width(s) > 1)
            .count();
        // Strict panel layout (relaxation off): union rows match each
        // leading column's CSC pattern exactly, zero padded slots.
        let panels = sympiler_graph::lu_supernode::supernodes_lu_relaxed(&sym, 0, 0.0, 0);
        assert_eq!(panels.part.first_col, part.first_col);
        let c = emit_lu_supernodal_c(&panels, n_wide, share);
        assert!(c.contains("panelSet"));
        assert!(c.contains("lu_supernodal_specialized"));
        assert!(c.contains("dense_getrf"));
        assert!(c.contains("dense_trsm_right_upper"));
        assert!(c.contains("dense_trsm + dense_gemm"));
        assert!(c.contains("lu_column_scalar"), "singleton run emitted");
        // The header quotes the compile-time panel statistics.
        assert!(c.contains("% of factorization flops in dense kernels"));
        // Wide panels factor in dedicated trapezoid storage (SX), never
        // in the packed CSC Lx (whose nesting columns shrink, so they
        // cannot alias a constant-stride dense block).
        assert!(c.contains("double *SX"));
        assert!(
            c.contains("static const int sxSize = 6;"),
            "one 3x2 trapezoid"
        );
        assert!(c.contains("double *W = SX + 0;"));
        assert!(!c.contains("W = Lx"), "Lx must never be treated as dense");
    }

    #[test]
    fn pragma_emission() {
        let mut k = lower_trisolve();
        crate::transform::low_level::annotate_unroll(&mut k.body, 4);
        crate::transform::low_level::annotate_vectorize(&mut k.body, &[("j1".into(), 100)], 8);
        let c = emit_kernel_c(&k);
        assert!(c.contains("#pragma GCC unroll 4"));
        assert!(c.contains("#pragma omp simd"));
    }
}
