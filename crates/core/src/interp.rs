//! AST interpreter — executes kernels in the domain-specific IR
//! directly over named arrays.
//!
//! This is the semantic referee for the transformation phases: a kernel
//! must compute the same result before and after VI-Prune / VS-Block /
//! peeling (the paper argues correctness from the topological order of
//! the inspection sets; here we *check* it). The interpreter is not a
//! performance path — the executable plans are — but it makes the AST
//! pipeline end-to-end executable, like running the generated C through
//! a C interpreter.

use crate::ast::{AssignOp, BinOp, Expr, Kernel, Stmt};
use std::collections::HashMap;

/// The interpreter environment: integer arrays, float arrays, and
/// integer scalars, addressed by name.
#[derive(Debug, Default, Clone)]
pub struct Env {
    pub ints: HashMap<String, Vec<i64>>,
    pub floats: HashMap<String, Vec<f64>>,
    pub scalars: HashMap<String, i64>,
}

/// Interpretation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    UnknownName(String),
    OutOfBounds { array: String, index: i64 },
    TypeMismatch(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::UnknownName(n) => write!(f, "unknown name {n}"),
            InterpError::OutOfBounds { array, index } => {
                write!(f, "index {index} out of bounds for {array}")
            }
            InterpError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl Env {
    /// Bind an integer array (e.g. `Lp`, `Li`, `pruneSet`).
    pub fn int_array(mut self, name: &str, data: Vec<i64>) -> Self {
        self.ints.insert(name.to_string(), data);
        self
    }

    /// Bind a float array (e.g. `Lx`, `x`).
    pub fn float_array(mut self, name: &str, data: Vec<f64>) -> Self {
        self.floats.insert(name.to_string(), data);
        self
    }

    /// Bind an integer scalar (e.g. `n`, `pruneSetSize`).
    pub fn scalar(mut self, name: &str, v: i64) -> Self {
        self.scalars.insert(name.to_string(), v);
        self
    }

    /// Evaluate an expression as an integer (for indices and bounds).
    fn eval_int(&self, e: &Expr) -> Result<i64, InterpError> {
        match e {
            Expr::Int(v) => Ok(*v),
            Expr::Var(name) => self
                .scalars
                .get(name)
                .copied()
                .ok_or_else(|| InterpError::UnknownName(name.clone())),
            Expr::Index(array, idx) => {
                let i = self.eval_int(idx)?;
                let arr = self
                    .ints
                    .get(array)
                    .ok_or_else(|| InterpError::UnknownName(array.clone()))?;
                arr.get(usize::try_from(i).map_err(|_| InterpError::OutOfBounds {
                    array: array.clone(),
                    index: i,
                })?)
                .copied()
                .ok_or(InterpError::OutOfBounds {
                    array: array.clone(),
                    index: i,
                })
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval_int(l)?;
                let b = self.eval_int(r)?;
                Ok(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                })
            }
        }
    }

    /// Evaluate an expression as a float (for numeric right-hand sides).
    fn eval_float(&self, e: &Expr) -> Result<f64, InterpError> {
        match e {
            Expr::Int(v) => Ok(*v as f64),
            Expr::Var(name) => {
                if let Some(v) = self.scalars.get(name) {
                    return Ok(*v as f64);
                }
                Err(InterpError::UnknownName(name.clone()))
            }
            Expr::Index(array, idx) => {
                let i = self.eval_int(idx)?;
                if let Some(arr) = self.floats.get(array) {
                    let iu = usize::try_from(i).map_err(|_| InterpError::OutOfBounds {
                        array: array.clone(),
                        index: i,
                    })?;
                    return arr.get(iu).copied().ok_or(InterpError::OutOfBounds {
                        array: array.clone(),
                        index: i,
                    });
                }
                // Fall back to integer arrays promoted to float.
                self.eval_int(e).map(|v| v as f64)
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval_float(l)?;
                let b = self.eval_float(r)?;
                Ok(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                })
            }
        }
    }
}

/// Execute a statement list in the environment.
fn exec_stmts(stmts: &[Stmt], env: &mut Env) -> Result<(), InterpError> {
    for s in stmts {
        exec_stmt(s, env)?;
    }
    Ok(())
}

fn exec_stmt(s: &Stmt, env: &mut Env) -> Result<(), InterpError> {
    match s {
        Stmt::Comment(_) => Ok(()),
        Stmt::Let { name, rhs } => {
            let v = env.eval_int(rhs)?;
            env.scalars.insert(name.clone(), v);
            Ok(())
        }
        Stmt::Assign {
            array,
            index,
            op,
            rhs,
        } => {
            let i = env.eval_int(index)?;
            // Float target?
            if env.floats.contains_key(array) {
                let v = env.eval_float(rhs)?;
                let arr = env.floats.get_mut(array).unwrap();
                let iu = usize::try_from(i).map_err(|_| InterpError::OutOfBounds {
                    array: array.clone(),
                    index: i,
                })?;
                let slot = arr.get_mut(iu).ok_or(InterpError::OutOfBounds {
                    array: array.clone(),
                    index: i,
                })?;
                match op {
                    AssignOp::Set => *slot = v,
                    AssignOp::SubAssign => *slot -= v,
                    AssignOp::AddAssign => *slot += v,
                    AssignOp::DivAssign => *slot /= v,
                }
                Ok(())
            } else if env.ints.contains_key(array) {
                let v = env.eval_int(rhs)?;
                let arr = env.ints.get_mut(array).unwrap();
                let iu = usize::try_from(i).map_err(|_| InterpError::OutOfBounds {
                    array: array.clone(),
                    index: i,
                })?;
                let slot = arr.get_mut(iu).ok_or(InterpError::OutOfBounds {
                    array: array.clone(),
                    index: i,
                })?;
                match op {
                    AssignOp::Set => *slot = v,
                    AssignOp::SubAssign => *slot -= v,
                    AssignOp::AddAssign => *slot += v,
                    AssignOp::DivAssign => *slot /= v,
                }
                Ok(())
            } else {
                Err(InterpError::UnknownName(array.clone()))
            }
        }
        Stmt::Loop {
            var, lo, hi, body, ..
        } => {
            let lo = env.eval_int(lo)?;
            let hi = env.eval_int(hi)?;
            let saved = env.scalars.get(var).copied();
            for i in lo..hi {
                env.scalars.insert(var.clone(), i);
                exec_stmts(body, env)?;
            }
            match saved {
                Some(v) => {
                    env.scalars.insert(var.clone(), v);
                }
                None => {
                    env.scalars.remove(var);
                }
            }
            Ok(())
        }
    }
}

/// Run a kernel in the given environment. The caller binds every kernel
/// parameter (and any inspection-set arrays the transformed kernel
/// reads) before calling.
pub fn run_kernel(kernel: &Kernel, env: &mut Env) -> Result<(), InterpError> {
    exec_stmts(&kernel.body, env)
}

/// Convenience: interpret the (possibly transformed) triangular-solve
/// kernel on a concrete CSC matrix and dense RHS, returning `x`.
pub fn interpret_trisolve(
    kernel: &Kernel,
    l: &sympiler_sparse::CscMatrix,
    b: &[f64],
    prune_set: Option<&[usize]>,
) -> Result<Vec<f64>, InterpError> {
    let mut env = Env::default()
        .scalar("n", l.n_cols() as i64)
        .int_array("Lp", l.col_ptr().iter().map(|&v| v as i64).collect())
        .int_array("Li", l.row_idx().iter().map(|&v| v as i64).collect())
        .float_array("Lx", l.values().to_vec())
        .float_array("x", b.to_vec());
    if let Some(ps) = prune_set {
        env = env
            .int_array("pruneSet", ps.iter().map(|&v| v as i64).collect())
            .scalar("pruneSetSize", ps.len() as i64);
    }
    run_kernel(kernel, &mut env)?;
    Ok(env.floats.remove("x").expect("x bound above"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_trisolve;
    use crate::transform::apply_vi_prune;
    use sympiler_sparse::gen::random_lower_triangular;
    use sympiler_sparse::rhs;

    #[test]
    fn initial_ast_computes_forward_substitution() {
        let l = random_lower_triangular(25, 3, 1);
        let b: Vec<f64> = (0..25).map(|i| (i % 4) as f64 - 1.0).collect();
        let kernel = lower_trisolve();
        let x = interpret_trisolve(&kernel, &l, &b, None).unwrap();
        let mut expect = b.clone();
        sympiler_solvers::trisolve::naive_forward(&l, &mut expect);
        for (p, q) in x.iter().zip(&expect) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn vi_pruned_ast_is_semantically_equal() {
        // The compiler-correctness loop: transformed AST == original AST
        // on the pruned inputs.
        for seed in 0..5u64 {
            let l = random_lower_triangular(30, 3, seed);
            let b = rhs::random_sparse_rhs(30, 0.1, seed + 7);
            let bd = b.to_dense();
            let initial = lower_trisolve();
            let x_full = interpret_trisolve(&initial, &l, &bd, None).unwrap();

            let mut pruned = lower_trisolve();
            apply_vi_prune(&mut pruned, "pruneSet", "pruneSetSize");
            let mut reach = sympiler_graph::reach(&l, b.indices());
            reach.sort_unstable();
            let x_pruned = interpret_trisolve(&pruned, &l, &bd, Some(&reach)).unwrap();

            for i in 0..30 {
                assert!(
                    (x_full[i] - x_pruned[i]).abs() < 1e-12,
                    "seed {seed}: x[{i}] {} vs {}",
                    x_full[i],
                    x_pruned[i]
                );
            }
        }
    }

    #[test]
    fn pruned_ast_with_wrong_order_would_differ() {
        // Negative control: feeding a NON-topological prune set produces
        // a different (wrong) answer, demonstrating the interpreter can
        // detect ordering bugs the paper's §2.4 correctness argument
        // rules out.
        let mut t = sympiler_sparse::TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 0, -1.0);
        t.push(1, 1, 1.0);
        t.push(2, 1, -1.0);
        t.push(2, 2, 1.0);
        let l = t.to_csc().unwrap();
        let b = vec![1.0, 0.0, 0.0];
        let mut pruned = lower_trisolve();
        apply_vi_prune(&mut pruned, "pruneSet", "pruneSetSize");
        let good = interpret_trisolve(&pruned, &l, &b, Some(&[0, 1, 2])).unwrap();
        let bad = interpret_trisolve(&pruned, &l, &b, Some(&[2, 1, 0])).unwrap();
        assert!((good[2] - 1.0).abs() < 1e-12, "chain propagates to x[2]");
        assert!(
            (bad[2] - good[2]).abs() > 0.5,
            "wrong order must corrupt the result (got {} vs {})",
            bad[2],
            good[2]
        );
    }

    #[test]
    fn interpreter_reports_unknown_names() {
        let kernel = lower_trisolve();
        let mut env = Env::default(); // nothing bound
        let err = run_kernel(&kernel, &mut env).unwrap_err();
        assert!(matches!(err, InterpError::UnknownName(_)));
    }

    #[test]
    fn interpreter_reports_out_of_bounds() {
        let mut env = Env::default().float_array("x", vec![0.0; 2]);
        let s = Stmt::Assign {
            array: "x".into(),
            index: Expr::Int(5),
            op: AssignOp::Set,
            rhs: Expr::Int(1),
        };
        let err = exec_stmt(&s, &mut env).unwrap_err();
        assert!(matches!(err, InterpError::OutOfBounds { .. }));
    }

    #[test]
    fn loop_variable_scoping_restores_outer_binding() {
        let mut env = Env::default()
            .scalar("i", 99)
            .float_array("x", vec![0.0; 3]);
        let s = Stmt::Loop {
            var: "i".into(),
            lo: Expr::Int(0),
            hi: Expr::Int(3),
            body: vec![Stmt::Assign {
                array: "x".into(),
                index: Expr::var("i"),
                op: AssignOp::Set,
                rhs: Expr::var("i"),
            }],
            annotations: vec![],
        };
        exec_stmt(&s, &mut env).unwrap();
        assert_eq!(env.scalars["i"], 99, "outer binding restored");
        assert_eq!(env.floats["x"], vec![0.0, 1.0, 2.0]);
    }
}
