//! Inspector-guided and low-level AST transformations (paper §2.3–2.4,
//! Figure 3).

pub mod low_level;
pub mod vi_prune;
pub mod vs_block;

pub use low_level::{apply_peeling, count_peeled};
pub use vi_prune::apply_vi_prune;
pub use vs_block::apply_vs_block;
