//! 2-D Variable-Sized Blocking (VS-Block), paper §2.3.2 and Figure 3
//! (bottom): a loop nest marked with [`Annotation::VSBlockCandidate`]
//! becomes an outer loop over variable-sized blocks with inner loops
//! over each block's extent, plus block-local dense kernels.

use crate::ast::{Annotation, AssignOp, Expr, Kernel, Stmt};

/// Apply VS-Block to the first candidate loop found. The rewritten
/// code follows Figure 3d:
///
/// ```text
/// for b in 0..blockSetSize {
///     // diagonal: dense kernel on block b
///     for j1 in 0..blockWidth[b] { ... }
///     // off-diagonal: dense update over the block's rows
///     for j2 in 0..blockRows[b] { ... }
/// }
/// ```
///
/// The diagonal/off-diagonal split is the method-dependent part the
/// paper describes ("the type of numerical method used may need to
/// change after applying this transformation"): `diag_kernel` and
/// `offdiag_kernel` name the dense kernels to call, and become
/// annotated statements in the emitted code.
pub fn apply_vs_block(kernel: &mut Kernel, diag_kernel: &str, offdiag_kernel: &str) -> bool {
    fn rewrite(stmts: &mut Vec<Stmt>, diag_kernel: &str, offdiag_kernel: &str) -> bool {
        for s in stmts.iter_mut() {
            if let Stmt::Loop {
                var,
                body,
                annotations,
                ..
            } = s
            {
                let is_candidate = annotations
                    .iter()
                    .any(|a| matches!(a, Annotation::VSBlockCandidate { .. }));
                if is_candidate {
                    let b = "b";
                    let mut new_body = vec![
                        Stmt::Comment(format!(
                            "block {var}-range: blockSet[{b}] .. blockSet[{b}+1]"
                        )),
                        Stmt::Let {
                            name: format!("{var}_first"),
                            rhs: Expr::idx("blockSet", Expr::var(b)),
                        },
                        Stmt::Let {
                            name: format!("{var}_width"),
                            rhs: Expr::Bin(
                                crate::ast::BinOp::Sub,
                                Box::new(Expr::idx(
                                    "blockSet",
                                    Expr::add(Expr::var(b), Expr::Int(1)),
                                )),
                                Box::new(Expr::idx("blockSet", Expr::var(b))),
                            ),
                        },
                        Stmt::Comment(
                            "per-block numeric body (update phase over the block)".into(),
                        ),
                    ];
                    // Retain the original body, rebased on the block's
                    // first column — the update-phase statements (which
                    // a prior VI-Prune may already have specialized).
                    new_body.extend(
                        body.iter()
                            .map(|st| st.substitute(var, &Expr::var(&format!("{var}_first")))),
                    );
                    new_body.extend([
                        Stmt::Comment(format!("diagonal block: {diag_kernel}")),
                        Stmt::Assign {
                            array: diag_kernel.to_string(),
                            index: Expr::var(b),
                            op: AssignOp::Set,
                            rhs: Expr::var(&format!("{var}_width")),
                        },
                        Stmt::Comment(format!("off-diagonal panel: {offdiag_kernel}")),
                        Stmt::Assign {
                            array: offdiag_kernel.to_string(),
                            index: Expr::var(b),
                            op: AssignOp::Set,
                            rhs: Expr::var(&format!("{var}_width")),
                        },
                    ]);
                    let kept: Vec<Annotation> = annotations
                        .iter()
                        .filter(|a| !matches!(a, Annotation::VSBlockCandidate { .. }))
                        .cloned()
                        .chain([Annotation::Unroll(1)])
                        .collect();
                    *s = Stmt::Loop {
                        var: b.to_string(),
                        lo: Expr::Int(0),
                        hi: Expr::var("blockSetSize"),
                        body: new_body,
                        annotations: kept,
                    };
                    return true;
                }
                if let Stmt::Loop { body, .. } = s {
                    if rewrite(body, diag_kernel, offdiag_kernel) {
                        return true;
                    }
                }
            }
        }
        false
    }
    rewrite(&mut kernel.body, diag_kernel, offdiag_kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_cholesky, lower_trisolve};

    #[test]
    fn blocks_the_trisolve_loop() {
        let mut k = lower_trisolve();
        assert!(apply_vs_block(&mut k, "dense_trsv", "dense_gemv"));
        match &k.body[0] {
            Stmt::Loop { var, hi, body, .. } => {
                assert_eq!(var, "b");
                assert_eq!(*hi, Expr::var("blockSetSize"));
                let comments: Vec<&str> = body
                    .iter()
                    .filter_map(|s| match s {
                        Stmt::Comment(c) => Some(c.as_str()),
                        _ => None,
                    })
                    .collect();
                assert!(comments.iter().any(|c| c.contains("dense_trsv")));
                assert!(comments.iter().any(|c| c.contains("dense_gemv")));
            }
            other => panic!("expected block loop, got {other:?}"),
        }
    }

    #[test]
    fn blocks_the_cholesky_outer_loop() {
        let mut k = lower_cholesky();
        assert!(apply_vs_block(&mut k, "dense_potrf", "dense_trsm"));
        match &k.body[0] {
            Stmt::Loop { var, .. } => assert_eq!(var, "b"),
            other => panic!("expected block loop, got {other:?}"),
        }
        // The candidate is consumed.
        assert!(!apply_vs_block(&mut k, "dense_potrf", "dense_trsm"));
    }
}
