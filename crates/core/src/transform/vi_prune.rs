//! Variable Iteration Space Pruning (VI-Prune), paper §2.3.1 and
//! Figure 3 (top): a loop over `0..m` marked with a
//! [`Annotation::VIPruneCandidate`] becomes a loop over
//! `0..pruneSetSize` whose body reads `j = pruneSet[p]` and has every
//! use of the original index replaced.

use crate::ast::{Annotation, Expr, Kernel, Stmt};

/// Apply VI-Prune to the first candidate loop found (depth-first).
/// `set_name` is the inspection-set array name to bind (e.g.
/// `"pruneSet"`); `set_size_name` its length variable.
///
/// Returns `true` if a candidate was found and transformed.
pub fn apply_vi_prune(kernel: &mut Kernel, set_name: &str, set_size_name: &str) -> bool {
    fn rewrite(stmts: &mut Vec<Stmt>, set_name: &str, set_size_name: &str) -> bool {
        for s in stmts.iter_mut() {
            if let Stmt::Loop {
                var,
                body,
                annotations,
                ..
            } = s
            {
                let is_candidate = annotations
                    .iter()
                    .any(|a| matches!(a, Annotation::VIPruneCandidate { set } if set == set_name));
                if is_candidate {
                    // New loop: for p_var in 0..setSize, with
                    //   var' = set[p_var]
                    // and all uses of `var` replaced by `var'`.
                    let p_var = format!("p_{var}");
                    let new_idx = Expr::idx(set_name, Expr::var(&p_var));
                    let bound_var = format!("{var}_p");
                    let mut new_body = vec![Stmt::Let {
                        name: bound_var.clone(),
                        rhs: new_idx,
                    }];
                    new_body.extend(
                        body.iter()
                            .map(|st| st.substitute(var, &Expr::var(&bound_var))),
                    );
                    let kept: Vec<Annotation> = annotations
                        .iter()
                        .filter(|a| !matches!(a, Annotation::VIPruneCandidate { .. }))
                        .cloned()
                        .collect();
                    *s = Stmt::Loop {
                        var: p_var,
                        lo: Expr::Int(0),
                        hi: Expr::var(set_size_name),
                        body: new_body,
                        annotations: kept,
                    };
                    return true;
                }
                if rewrite(body, set_name, set_size_name) {
                    return true;
                }
            }
        }
        false
    }
    rewrite(&mut kernel.body, set_name, set_size_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::visit_loops;
    use crate::lower::lower_trisolve;

    #[test]
    fn prunes_the_outer_trisolve_loop() {
        let mut k = lower_trisolve();
        assert!(apply_vi_prune(&mut k, "pruneSet", "pruneSetSize"));
        // Outer loop now runs over the prune set.
        match &k.body[0] {
            Stmt::Loop { var, hi, body, .. } => {
                assert_eq!(var, "p_j0");
                assert_eq!(*hi, Expr::var("pruneSetSize"));
                // First body statement binds the pruned index.
                match &body[0] {
                    Stmt::Let { name, rhs } => {
                        assert_eq!(name, "j0_p");
                        assert_eq!(*rhs, Expr::idx("pruneSet", Expr::var("p_j0")));
                    }
                    other => panic!("expected Let, got {other:?}"),
                }
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn index_uses_are_replaced_fig3_semantics() {
        let mut k = lower_trisolve();
        apply_vi_prune(&mut k, "pruneSet", "pruneSetSize");
        // No remaining reference to the original loop index j0 anywhere.
        fn expr_uses_var(e: &Expr, v: &str) -> bool {
            match e {
                Expr::Int(_) => false,
                Expr::Var(x) => x == v,
                Expr::Index(_, i) => expr_uses_var(i, v),
                Expr::Bin(_, l, r) => expr_uses_var(l, v) || expr_uses_var(r, v),
            }
        }
        fn stmt_uses_var(s: &Stmt, v: &str) -> bool {
            match s {
                Stmt::Loop { lo, hi, body, .. } => {
                    expr_uses_var(lo, v)
                        || expr_uses_var(hi, v)
                        || body.iter().any(|s| stmt_uses_var(s, v))
                }
                Stmt::Assign { index, rhs, .. } => expr_uses_var(index, v) || expr_uses_var(rhs, v),
                Stmt::Let { rhs, .. } => expr_uses_var(rhs, v),
                Stmt::Comment(_) => false,
            }
        }
        assert!(!k.body.iter().any(|s| stmt_uses_var(s, "j0")));
    }

    #[test]
    fn candidate_annotation_is_consumed() {
        let mut k = lower_trisolve();
        apply_vi_prune(&mut k, "pruneSet", "pruneSetSize");
        let mut candidates = 0;
        visit_loops(&k.body, &mut |s| {
            if let Stmt::Loop { annotations, .. } = s {
                candidates += annotations
                    .iter()
                    .filter(|a| matches!(a, crate::ast::Annotation::VIPruneCandidate { .. }))
                    .count();
            }
        });
        assert_eq!(candidates, 0);
        // Applying again finds nothing.
        assert!(!apply_vi_prune(&mut k, "pruneSet", "pruneSetSize"));
    }

    #[test]
    fn wrong_set_name_is_ignored() {
        let mut k = lower_trisolve();
        assert!(!apply_vi_prune(&mut k, "someOtherSet", "sz"));
    }
}
