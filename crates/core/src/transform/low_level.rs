//! Enabled low-level transformations (paper §2.4): loop peeling driven
//! by inspection-set statistics, plus the unroll/vectorize annotations
//! the later code-generation stage consumes.
//!
//! Peeling is the one with visible structure in Figure 1e / Figure 2c:
//! iterations of the pruned loop whose column count exceeds a threshold
//! are pulled out of the loop and emitted as straight-line code so they
//! can be specialized/vectorized. "Because the reach-set is created in
//! topological order, iteration ordering dependencies are met and thus
//! code correctness is guaranteed after loop peeling."

use crate::ast::{Annotation, Expr, Stmt};

/// Annotate the (already VI-Pruned) loop with a peel directive for the
/// given iteration positions, then materialize the peel: positions are
/// emitted as straight-line clones of the body with the loop index
/// fixed, and the loop is annotated to skip them.
///
/// `positions` are indices **into the prune set**, in increasing order.
/// Only a leading run of positions `0..k` plus interior positions are
/// supported the way Figure 1e does it: each peeled iteration becomes a
/// guarded clone placed before/within the loop sequence; the remaining
/// loop iterates over the non-peeled positions via `pruneSetRest`.
pub fn apply_peeling(stmts: &mut Vec<Stmt>, loop_var_hint: &str, positions: &[usize]) -> bool {
    if positions.is_empty() {
        return false;
    }
    // Find the pruned loop (the loop whose var starts with "p_").
    let idx = stmts.iter().position(
        |s| matches!(s, Stmt::Loop { var, .. } if var.starts_with("p_") || var == loop_var_hint),
    );
    let Some(idx) = idx else {
        return false;
    };
    let Stmt::Loop {
        var,
        body,
        annotations,
        ..
    } = &mut stmts[idx]
    else {
        unreachable!("position() matched a loop");
    };
    annotations.push(Annotation::Peel(positions.to_vec()));
    // Materialize straight-line clones for each peeled position.
    let mut peeled_code: Vec<Stmt> = Vec::new();
    for &p in positions {
        peeled_code.push(Stmt::Comment(format!("peeled iteration {var} = {p}")));
        for st in body.iter() {
            peeled_code.push(st.substitute(var, &Expr::Int(p as i64)));
        }
    }
    // Insert peeled code before the loop (valid for a topologically
    // ordered prune set when the peeled positions lead the set; the
    // general interleaving is handled by the executable plan, which
    // schedules ops in exact topological order).
    let mut tail = stmts.split_off(idx);
    stmts.extend(peeled_code);
    stmts.append(&mut tail);
    true
}

/// Count peel annotations in a statement tree (test/report helper).
pub fn count_peeled(stmts: &[Stmt]) -> usize {
    let mut count = 0;
    crate::ast::visit_loops(stmts, &mut |s| {
        if let Stmt::Loop { annotations, .. } = s {
            count += annotations
                .iter()
                .filter_map(|a| match a {
                    Annotation::Peel(v) => Some(v.len()),
                    _ => None,
                })
                .sum::<usize>();
        }
    });
    count
}

/// Attach an unroll annotation to every innermost loop (driven by the
/// §2.4 observation that inspector-guided transformations expose
/// compile-time loop bounds).
pub fn annotate_unroll(stmts: &mut [Stmt], factor: usize) {
    for s in stmts.iter_mut() {
        if let Stmt::Loop {
            body, annotations, ..
        } = s
        {
            let has_inner = body.iter().any(|b| matches!(b, Stmt::Loop { .. }));
            if has_inner {
                annotate_unroll(body, factor);
            } else {
                annotations.push(Annotation::Unroll(factor));
            }
        }
    }
}

/// Attach a vectorize annotation to loops whose trip count (from the
/// inspection set) exceeds `min_trip`.
pub fn annotate_vectorize(stmts: &mut [Stmt], trip_counts: &[(String, usize)], min_trip: usize) {
    for s in stmts.iter_mut() {
        if let Stmt::Loop {
            var,
            body,
            annotations,
            ..
        } = s
        {
            if trip_counts.iter().any(|(v, t)| v == var && *t >= min_trip) {
                annotations.push(Annotation::Vectorize);
            }
            annotate_vectorize(body, trip_counts, min_trip);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_trisolve;
    use crate::transform::apply_vi_prune;

    #[test]
    fn peeling_materializes_straight_line_code() {
        let mut k = lower_trisolve();
        apply_vi_prune(&mut k, "pruneSet", "pruneSetSize");
        assert!(apply_peeling(&mut k.body, "p_j0", &[0, 3]));
        // Two peel comments + the loop remain at top level.
        let comments: Vec<&String> = k
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Comment(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].contains("= 0"));
        assert!(comments[1].contains("= 3"));
        assert_eq!(count_peeled(&k.body), 2);
    }

    #[test]
    fn empty_positions_do_nothing() {
        let mut k = lower_trisolve();
        apply_vi_prune(&mut k, "pruneSet", "pruneSetSize");
        assert!(!apply_peeling(&mut k.body, "p_j0", &[]));
    }

    #[test]
    fn unroll_annotates_innermost_only() {
        let mut k = lower_trisolve();
        annotate_unroll(&mut k.body, 4);
        // Outer loop must not carry the unroll annotation.
        match &k.body[0] {
            Stmt::Loop {
                annotations, body, ..
            } => {
                assert!(!annotations
                    .iter()
                    .any(|a| matches!(a, Annotation::Unroll(_))));
                let inner = body
                    .iter()
                    .find_map(|s| match s {
                        Stmt::Loop { annotations, .. } => Some(annotations),
                        _ => None,
                    })
                    .expect("inner loop");
                assert!(inner.iter().any(|a| matches!(a, Annotation::Unroll(4))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn vectorize_respects_trip_threshold() {
        let mut k = lower_trisolve();
        annotate_vectorize(&mut k.body, &[("j1".into(), 16)], 8);
        let mut found = false;
        crate::ast::visit_loops(&k.body, &mut |s| {
            if let Stmt::Loop {
                var, annotations, ..
            } = s
            {
                if var == "j1" {
                    found = annotations
                        .iter()
                        .any(|a| matches!(a, Annotation::Vectorize));
                }
            }
        });
        assert!(found);
        // Below threshold: no annotation.
        let mut k2 = lower_trisolve();
        annotate_vectorize(&mut k2.body, &[("j1".into(), 4)], 8);
        crate::ast::visit_loops(&k2.body, &mut |s| {
            if let Stmt::Loop {
                var, annotations, ..
            } = s
            {
                if var == "j1" {
                    assert!(!annotations
                        .iter()
                        .any(|a| matches!(a, Annotation::Vectorize)));
                }
            }
        });
    }
}
