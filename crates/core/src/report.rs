//! Symbolic-phase reporting: where inspection time goes and what the
//! inspectors found. Feeds the paper's Figures 8/9 (symbolic + numeric
//! accumulated time) and the §4.3 overhead discussion.
//!
//! The report is the compile-phase view; when profiling is enabled the
//! same measurements also land on the plan's [`Profiler`] (as lane-0
//! `compile: ...` spans and `sets.*` gauges) so compile and numeric
//! phases share one trace — see [`timed_traced`] and
//! [`SymbolicReport::export_gauges`].

use std::time::Duration;
use sympiler_obs::Profiler;

/// Timing and set-size report of one Sympiler compilation.
#[derive(Debug, Clone, Default)]
pub struct SymbolicReport {
    /// Per-stage wall-clock durations, in pipeline order.
    pub stages: Vec<(String, Duration)>,
    /// Named sizes of the inspection sets (reach-set length, number of
    /// supernodes, nnz(L), ...).
    pub set_sizes: Vec<(String, usize)>,
}

impl SymbolicReport {
    /// Record a stage duration.
    pub fn stage(&mut self, name: &str, d: Duration) {
        self.stages.push((name.to_string(), d));
    }

    /// Record an inspection-set size.
    pub fn set_size(&mut self, name: &str, size: usize) {
        self.set_sizes.push((name.to_string(), size));
    }

    /// Total symbolic (inspection + transformation + codegen) time.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// Look up a recorded set size.
    pub fn size_of(&self, name: &str) -> Option<usize> {
        self.set_sizes
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
    }

    /// Replay the recorded set sizes onto a profiler as `sets.<name>`
    /// gauges (no-op when the profiler is disabled).
    pub fn export_gauges(&self, profiler: &Profiler) {
        if !profiler.is_enabled() {
            return;
        }
        for (name, s) in &self.set_sizes {
            profiler.gauge(&format!("sets.{name}"), *s as f64);
        }
    }

    /// Render as an aligned text table (used by the bench binaries).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("symbolic stage                     time\n");
        for (name, d) in &self.stages {
            out.push_str(&format!("  {name:<32} {:>10.3?}\n", d));
        }
        out.push_str(&format!("  {:<32} {:>10.3?}\n", "TOTAL", self.total()));
        if !self.set_sizes.is_empty() {
            out.push_str("inspection sets\n");
            for (name, s) in &self.set_sizes {
                out.push_str(&format!("  {name:<32} {s:>10}\n"));
            }
        }
        out
    }
}

/// Time a closure, pushing the duration into the report.
pub fn timed<T>(report: &mut SymbolicReport, name: &str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    report.stage(name, start.elapsed());
    out
}

/// Time a closure, pushing the duration into the report **and**
/// recording the same interval as a lane-0 `compile: <name>` span when
/// the profiler is enabled — one measurement feeding both views.
pub fn timed_traced<T>(
    report: &mut SymbolicReport,
    profiler: &Profiler,
    name: &str,
    f: impl FnOnce() -> T,
) -> T {
    if !profiler.is_enabled() {
        return timed(report, name, f);
    }
    let span = profiler.begin(0, &format!("compile: {name}"));
    let out = timed(report, name, f);
    profiler.end(span);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_stages() {
        let mut r = SymbolicReport::default();
        r.stage("a", Duration::from_millis(2));
        r.stage("b", Duration::from_millis(3));
        assert_eq!(r.total(), Duration::from_millis(5));
    }

    #[test]
    fn timed_records_and_returns() {
        let mut r = SymbolicReport::default();
        let v = timed(&mut r, "work", || 21 * 2);
        assert_eq!(v, 42);
        assert_eq!(r.stages.len(), 1);
        assert_eq!(r.stages[0].0, "work");
    }

    #[test]
    fn set_sizes_lookup() {
        let mut r = SymbolicReport::default();
        r.set_size("reach", 17);
        assert_eq!(r.size_of("reach"), Some(17));
        assert_eq!(r.size_of("missing"), None);
    }

    #[test]
    fn timed_traced_records_into_both_views() {
        let mut r = SymbolicReport::default();
        let prof = Profiler::enabled();
        let v = timed_traced(&mut r, &prof, "dfs", || 7);
        assert_eq!(v, 7);
        assert_eq!(r.stages.len(), 1);
        let snap = prof.snapshot("t");
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "compile: dfs");

        // Disabled profiler: report still filled, no spans anywhere.
        let off = Profiler::disabled();
        timed_traced(&mut r, &off, "pack", || ());
        assert_eq!(r.stages.len(), 2);
        assert!(off.snapshot("t").spans.is_empty());
    }

    #[test]
    fn export_gauges_replays_set_sizes() {
        let mut r = SymbolicReport::default();
        r.set_size("nnz(L)", 99);
        let prof = Profiler::enabled();
        r.export_gauges(&prof);
        assert_eq!(prof.snapshot("t").gauge("sets.nnz(L)"), Some(99.0));
    }

    #[test]
    fn table_renders() {
        let mut r = SymbolicReport::default();
        r.stage("dfs", Duration::from_micros(10));
        r.set_size("reach-set", 5);
        let t = r.to_table();
        assert!(t.contains("dfs"));
        assert!(t.contains("reach-set"));
        assert!(t.contains("TOTAL"));
    }
}
