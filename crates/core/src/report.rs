//! Symbolic-phase reporting: where inspection time goes and what the
//! inspectors found. Feeds the paper's Figures 8/9 (symbolic + numeric
//! accumulated time) and the §4.3 overhead discussion.

use std::time::Duration;

/// Timing and set-size report of one Sympiler compilation.
#[derive(Debug, Clone, Default)]
pub struct SymbolicReport {
    /// Per-stage wall-clock durations, in pipeline order.
    pub stages: Vec<(String, Duration)>,
    /// Named sizes of the inspection sets (reach-set length, number of
    /// supernodes, nnz(L), ...).
    pub set_sizes: Vec<(String, usize)>,
}

impl SymbolicReport {
    /// Record a stage duration.
    pub fn stage(&mut self, name: &str, d: Duration) {
        self.stages.push((name.to_string(), d));
    }

    /// Record an inspection-set size.
    pub fn set_size(&mut self, name: &str, size: usize) {
        self.set_sizes.push((name.to_string(), size));
    }

    /// Total symbolic (inspection + transformation + codegen) time.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// Look up a recorded set size.
    pub fn size_of(&self, name: &str) -> Option<usize> {
        self.set_sizes
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
    }

    /// Render as an aligned text table (used by the bench binaries).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("symbolic stage                     time\n");
        for (name, d) in &self.stages {
            out.push_str(&format!("  {name:<32} {:>10.3?}\n", d));
        }
        out.push_str(&format!("  {:<32} {:>10.3?}\n", "TOTAL", self.total()));
        if !self.set_sizes.is_empty() {
            out.push_str("inspection sets\n");
            for (name, s) in &self.set_sizes {
                out.push_str(&format!("  {name:<32} {s:>10}\n"));
            }
        }
        out
    }
}

/// Time a closure, pushing the duration into the report.
pub fn timed<T>(report: &mut SymbolicReport, name: &str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    report.stage(name, start.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_stages() {
        let mut r = SymbolicReport::default();
        r.stage("a", Duration::from_millis(2));
        r.stage("b", Duration::from_millis(3));
        assert_eq!(r.total(), Duration::from_millis(5));
    }

    #[test]
    fn timed_records_and_returns() {
        let mut r = SymbolicReport::default();
        let v = timed(&mut r, "work", || 21 * 2);
        assert_eq!(v, 42);
        assert_eq!(r.stages.len(), 1);
        assert_eq!(r.stages[0].0, "work");
    }

    #[test]
    fn set_sizes_lookup() {
        let mut r = SymbolicReport::default();
        r.set_size("reach", 17);
        assert_eq!(r.size_of("reach"), Some(17));
        assert_eq!(r.size_of("missing"), None);
    }

    #[test]
    fn table_renders() {
        let mut r = SymbolicReport::default();
        r.stage("dfs", Duration::from_micros(10));
        r.set_size("reach-set", 5);
        let t = r.to_table();
        assert!(t.contains("dfs"));
        assert!(t.contains("reach-set"));
        assert!(t.contains("TOTAL"));
    }
}
