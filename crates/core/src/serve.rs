//! The serving layer: compile once, serve many.
//!
//! Sympiler's economics come from reuse — symbolic analysis is paid
//! once per sparsity pattern, then amortized over every numeric
//! factorization with that pattern. This module packages that reuse
//! for request-stream workloads (circuit transients, Newton loops,
//! parameter sweeps) where the caller cannot or should not manage
//! plan lifetimes by hand:
//!
//! * [`PlanCache`] — a concurrent cache of compiled [`SympilerLu`]
//!   plans keyed by a structural hash of `(pattern, options)`, with
//!   LRU eviction bounded by entry count and resident table bytes.
//!   Lookups return `Arc<CachedPlan>`: the plan's gather tables are
//!   shared, never cloned, and N threads factor against one plan
//!   concurrently (per-factorization state lives in a
//!   [`LuWorkspace`], not the plan).
//! * [`FactorService`] — a thread-pool front end accepting
//!   factor(+solve) requests, routing every request through one
//!   shared cache and per-worker workspaces.
//!
//! Batched numeric entry points live on the plan types themselves:
//! [`LuPlan::factor_batch`](crate::plan::lu::LuPlan::factor_batch)
//! (column-interleaved same-pattern batches) and
//! [`LuFactor::solve_batch`] (blocked multi-RHS sweeps).
//!
//! Everything here is observational-layer honest: cached, batched,
//! and served results are **bitwise identical** to direct
//! [`SympilerLu::compile`] + [`SympilerLu::factor`] calls.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as MemOrder};
use std::sync::{mpsc, Arc, Mutex};

use crate::compile::{SympilerLu, SympilerOptions};
use crate::plan::lu::{LuFactor, LuPlanError, LuWorkspace};
use sympiler_obs::Profiler;
use sympiler_sparse::CscMatrix;

/// FNV-1a, the same spirit as the vendored deterministic hashers:
/// stable across runs and platforms, so cache keys (and therefore
/// bench-reported hit rates) are reproducible.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_u64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// The cache key: a 64-bit FNV-1a digest of the sparsity pattern
/// (`n`, column pointers, row indices — **not** values) and every
/// compile-relevant field of [`SympilerOptions`]. Two requests whose
/// matrices share a pattern and whose options compare equal always
/// hash equal; the converse is only probabilistic, which is why
/// [`PlanCache`] verifies candidates with an exact pattern check and
/// an options comparison before reporting a hit.
pub fn structural_hash(a: &CscMatrix, opts: &SympilerOptions) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_u64(&mut h, a.n_cols() as u64);
    for &p in a.col_ptr() {
        fnv_u64(&mut h, p as u64);
    }
    for &r in a.row_idx() {
        fnv_u64(&mut h, r as u64);
    }
    // Options: every field that can change the compiled plan (or the
    // executor wrapped around it).
    fnv_u64(
        &mut h,
        (opts.vs_block as u64) | (opts.vi_prune as u64) << 1 | (opts.low_level as u64) << 2,
    );
    fnv_u64(&mut h, opts.max_supernode_width as u64);
    fnv_u64(&mut h, opts.vs_block_min_avg_size.to_bits());
    fnv_u64(&mut h, opts.peel_col_count as u64);
    fnv_u64(&mut h, opts.n_threads as u64);
    fnv_u64(&mut h, opts.ordering as u64);
    fnv_u64(&mut h, opts.block_lu as u64);
    fnv_u64(&mut h, opts.max_panel as u64);
    fnv_u64(&mut h, opts.pre_pivot as u64);
    fnv_u64(&mut h, opts.profile as u64);
    h
}

/// Capacity bounds for a [`PlanCache`]. Eviction triggers when
/// **either** bound is exceeded and always keeps at least one entry
/// (a cache that cannot hold the plan it just compiled would thrash
/// forever).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident plans (0 = unbounded by count).
    pub max_entries: usize,
    /// Maximum summed [`table_bytes`](crate::plan::lu::LuPlan::table_bytes)
    /// across resident plans (0 = unbounded by size).
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            max_entries: 64,
            max_bytes: 256 << 20, // 256 MiB of compiled tables
        }
    }
}

/// A cache-resident compiled plan: the [`SympilerLu`] plus the key
/// and options it was admitted under and its charged byte footprint.
/// Derefs to [`SympilerLu`], so `plan.factor(&a)`,
/// `plan.factor_with(&a, &mut ws)`, and `plan.factor_batch(&refs)`
/// all work directly on the `Arc<CachedPlan>` handles the cache hands
/// out — shared, immutable, never cloned per request.
#[derive(Debug)]
pub struct CachedPlan {
    lu: SympilerLu,
    key: u64,
    opts: SympilerOptions,
    bytes: usize,
}

impl CachedPlan {
    /// The structural hash this plan is filed under.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The options the plan was compiled with.
    pub fn options(&self) -> &SympilerOptions {
        &self.opts
    }

    /// Bytes of compiled tables the cache charges this entry for.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The compiled pipeline itself (also reachable via `Deref`).
    pub fn lu(&self) -> &SympilerLu {
        &self.lu
    }
}

impl std::ops::Deref for CachedPlan {
    type Target = SympilerLu;
    fn deref(&self) -> &SympilerLu {
        &self.lu
    }
}

struct Entry {
    plan: Arc<CachedPlan>,
    last_use: u64,
}

#[derive(Default)]
struct CacheInner {
    /// Hash buckets: collisions coexist as a short in-bucket list and
    /// are disambiguated by exact pattern + options checks.
    buckets: HashMap<u64, Vec<Entry>>,
    entries: usize,
    bytes: usize,
}

/// Point-in-time counters of a [`PlanCache`] (monotonic except
/// `entries`/`bytes`, which track current residency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered by a resident plan.
    pub hits: u64,
    /// Requests that had to compile.
    pub misses: u64,
    /// Plans evicted under capacity pressure.
    pub evictions: u64,
    /// Currently resident plans.
    pub entries: usize,
    /// Currently resident compiled-table bytes.
    pub bytes: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, 0.0 before any traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent, bounded cache of compiled LU pipelines, keyed by
/// [`structural_hash`] and verified exactly on every hit.
///
/// Compilation happens **outside** the cache lock — a slow compile on
/// one pattern never blocks hits on others — with a re-check on
/// insert so racing compilers of the same pattern converge on one
/// resident plan. Eviction is LRU over a global use tick, bounded by
/// [`CacheConfig`].
///
/// ```
/// use std::sync::Arc;
/// use sympiler_core::serve::{CacheConfig, PlanCache};
/// use sympiler_core::SympilerOptions;
/// use sympiler_sparse::gen;
///
/// let cache = PlanCache::new(CacheConfig::default());
/// let mut a = gen::circuit_unsym(40, 4, 2, 7);
/// let opts = SympilerOptions::default();
///
/// let p1 = cache.get_or_compile(&a, &opts)?; // miss: compiles
/// for v in a.values_mut() {
///     *v *= 2.0; // values change, pattern fixed
/// }
/// let p2 = cache.get_or_compile(&a, &opts)?; // hit: same plan
/// assert!(Arc::ptr_eq(&p1, &p2));
///
/// let f = p2.factor(&a)?; // CachedPlan derefs to SympilerLu
/// assert!(f.l().nnz() > 0);
/// let s = cache.stats();
/// assert_eq!((s.hits, s.misses), (1, 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    config: CacheConfig,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Observability sink: `serve.cache.*` counters land here. A
    /// disabled profiler (the default) makes every hook a no-op.
    profiler: Arc<Profiler>,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("config", &self.config)
            .field("stats", &s)
            .finish()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl PlanCache {
    /// An empty cache with the given capacity bounds and no profiler.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_profiler(config, Arc::new(Profiler::disabled()))
    }

    /// An empty cache whose hit/miss/eviction counters also land on
    /// `profiler` as `serve.cache.hit` / `serve.cache.miss` /
    /// `serve.cache.eviction` — the same [`Profiler`] machinery the
    /// numeric phase records kernel counters into, so one snapshot
    /// carries both.
    pub fn with_profiler(config: CacheConfig, profiler: Arc<Profiler>) -> Self {
        Self {
            inner: Mutex::new(CacheInner::default()),
            config,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            profiler,
        }
    }

    /// The capacity bounds this cache enforces.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let inner = self.inner.lock().unwrap();
            (inner.entries, inner.bytes)
        };
        CacheStats {
            hits: self.hits.load(MemOrder::Relaxed),
            misses: self.misses.load(MemOrder::Relaxed),
            evictions: self.evictions.load(MemOrder::Relaxed),
            entries,
            bytes,
        }
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries
    }

    /// True when no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every resident plan (counters keep their totals).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.buckets.clear();
        inner.entries = 0;
        inner.bytes = 0;
    }

    /// The plan for `(a's pattern, opts)` — resident if cached,
    /// compiled (and admitted) otherwise. A hit requires the exact
    /// compiled pattern and equal options, not just a matching hash;
    /// values of `a` are irrelevant. Returns the same `Arc` to every
    /// concurrent caller of the same key, so gather tables exist once
    /// regardless of thread count.
    pub fn get_or_compile(
        &self,
        a: &CscMatrix,
        opts: &SympilerOptions,
    ) -> Result<Arc<CachedPlan>, LuPlanError> {
        let key = structural_hash(a, opts);
        let now = self.tick.fetch_add(1, MemOrder::Relaxed);
        if let Some(plan) = self.lookup(key, a, opts, now) {
            self.hits.fetch_add(1, MemOrder::Relaxed);
            self.profiler.counter("serve.cache.hit").add(1);
            return Ok(plan);
        }
        // Miss: compile outside the lock so a slow symbolic phase on
        // one pattern never serializes hits on others.
        self.misses.fetch_add(1, MemOrder::Relaxed);
        self.profiler.counter("serve.cache.miss").add(1);
        let lu = SympilerLu::compile(a, opts)?;
        let plan = Arc::new(CachedPlan {
            key,
            opts: opts.clone(),
            bytes: lu.plan().table_bytes(),
            lu,
        });
        Ok(self.admit(key, a, opts, now, plan))
    }

    /// In-lock hit path: scan the key's bucket for an entry whose
    /// compiled pattern and options match exactly.
    fn lookup(
        &self,
        key: u64,
        a: &CscMatrix,
        opts: &SympilerOptions,
        now: u64,
    ) -> Option<Arc<CachedPlan>> {
        let mut inner = self.inner.lock().unwrap();
        let bucket = inner.buckets.get_mut(&key)?;
        for e in bucket.iter_mut() {
            if e.plan.opts == *opts && e.plan.lu.plan().check_pattern(a).is_ok() {
                e.last_use = now;
                return Some(e.plan.clone());
            }
        }
        None
    }

    /// Insert a freshly compiled plan, unless a racing thread already
    /// admitted an equivalent one while we compiled — theirs wins (we
    /// drop ours), keeping exactly one resident plan per key.
    fn admit(
        &self,
        key: u64,
        a: &CscMatrix,
        opts: &SympilerOptions,
        now: u64,
        plan: Arc<CachedPlan>,
    ) -> Arc<CachedPlan> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(bucket) = inner.buckets.get_mut(&key) {
            for e in bucket.iter_mut() {
                if e.plan.opts == *opts && e.plan.lu.plan().check_pattern(a).is_ok() {
                    e.last_use = now;
                    return e.plan.clone();
                }
            }
        }
        inner.entries += 1;
        inner.bytes += plan.bytes;
        inner.buckets.entry(key).or_default().push(Entry {
            plan: plan.clone(),
            last_use: now,
        });
        self.evict_locked(&mut inner);
        plan
    }

    /// LRU eviction down to the configured bounds, never below one
    /// resident entry. Called with the lock held.
    fn evict_locked(&self, inner: &mut CacheInner) {
        let over = |inner: &CacheInner| {
            (self.config.max_entries > 0 && inner.entries > self.config.max_entries)
                || (self.config.max_bytes > 0 && inner.bytes > self.config.max_bytes)
        };
        while inner.entries > 1 && over(inner) {
            // O(entries) scan for the oldest use tick — entry counts
            // are small (bounded by config), the scan is cheaper than
            // maintaining an ordered side structure under churn.
            let mut oldest: Option<(u64, u64)> = None; // (last_use, key)
            for (&key, bucket) in &inner.buckets {
                for e in bucket {
                    if oldest.is_none_or(|(t, _)| e.last_use < t) {
                        oldest = Some((e.last_use, key));
                    }
                }
            }
            let Some((tick, key)) = oldest else { break };
            let bucket = inner.buckets.get_mut(&key).expect("key from scan");
            let idx = bucket
                .iter()
                .position(|e| e.last_use == tick)
                .expect("entry from scan");
            let victim = bucket.swap_remove(idx);
            if bucket.is_empty() {
                inner.buckets.remove(&key);
            }
            inner.entries -= 1;
            inner.bytes -= victim.plan.bytes;
            self.evictions.fetch_add(1, MemOrder::Relaxed);
            self.profiler.counter("serve.cache.eviction").add(1);
        }
    }

    #[cfg(test)]
    /// Test hook: file `plan` under an arbitrary `key`, bypassing
    /// hashing — how the collision tests plant a same-key foreign
    /// entry that lookup must reject on the exact checks.
    fn insert_raw(&self, key: u64, plan: Arc<CachedPlan>) {
        let mut inner = self.inner.lock().unwrap();
        let now = self.tick.fetch_add(1, MemOrder::Relaxed);
        inner.entries += 1;
        inner.bytes += plan.bytes;
        inner.buckets.entry(key).or_default().push(Entry {
            plan,
            last_use: now,
        });
    }
}

/// One unit of serving work: factor `a` under `opts` (through the
/// shared [`PlanCache`]), then solve for each supplied right-hand
/// side via the blocked multi-RHS sweep.
pub struct ServeRequest {
    /// The matrix to factor (values fresh per request, pattern
    /// typically shared across the stream).
    pub a: CscMatrix,
    /// Compile options — part of the cache key.
    pub opts: SympilerOptions,
    /// Right-hand sides to solve after factoring (may be empty).
    pub rhs: Vec<Vec<f64>>,
}

/// What a [`ServeRequest`] produces.
pub struct ServeResponse {
    /// The numeric factorization, bitwise identical to an uncached
    /// `compile()` + `factor()` of the same request.
    pub factor: LuFactor,
    /// One solution per requested right-hand side, in order.
    pub solutions: Vec<Vec<f64>>,
}

/// A pending [`FactorService`] reply.
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeResponse, LuPlanError>>,
}

impl Ticket {
    /// Block until the worker finishes this request.
    ///
    /// # Panics
    /// If the service was dropped (workers joined) with the request
    /// still queued.
    pub fn wait(self) -> Result<ServeResponse, LuPlanError> {
        self.rx.recv().expect("serving worker dropped the reply")
    }
}

struct Job {
    req: ServeRequest,
    reply: mpsc::Sender<Result<ServeResponse, LuPlanError>>,
}

/// A thread-pool front end over a shared [`PlanCache`]: submit
/// [`ServeRequest`]s, collect [`Ticket`]s, wait for
/// [`ServeResponse`]s. Every worker holds one long-lived
/// [`LuWorkspace`] and factors against cache-shared plans — steady
/// state does no symbolic work and no per-request table or
/// accumulator allocation. Dropping the service drains the queue and
/// joins the workers.
pub struct FactorService {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    cache: Arc<PlanCache>,
}

impl FactorService {
    /// Spawn `n_workers` serving threads (at least one) over `cache`.
    pub fn new(n_workers: usize, cache: Arc<PlanCache>) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..n_workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let mut ws = LuWorkspace::new();
                    loop {
                        // Hold the queue lock only for the dequeue.
                        let job = match rx.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => break, // service dropped, queue drained
                        };
                        let result = Self::run(&cache, &mut ws, &job.req);
                        // A dropped ticket just discards the response.
                        let _ = job.reply.send(result);
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
            cache,
        }
    }

    /// The shared plan cache (e.g. for [`PlanCache::stats`]).
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Number of serving threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a request; the returned [`Ticket`] resolves when a
    /// worker has factored (and solved) it.
    pub fn submit(&self, req: ServeRequest) -> Ticket {
        let (reply, rx) = mpsc::channel();
        self.tx
            .as_ref()
            .expect("sender lives until drop")
            .send(Job { req, reply })
            .expect("workers live until drop");
        Ticket { rx }
    }

    /// Submit and wait: one factor (+ solves) through the pool.
    pub fn call(&self, req: ServeRequest) -> Result<ServeResponse, LuPlanError> {
        self.submit(req).wait()
    }

    fn run(
        cache: &PlanCache,
        ws: &mut LuWorkspace,
        req: &ServeRequest,
    ) -> Result<ServeResponse, LuPlanError> {
        let plan = cache.get_or_compile(&req.a, &req.opts)?;
        let factor = plan.factor_with(&req.a, ws)?;
        let solutions = if req.rhs.is_empty() {
            Vec::new()
        } else {
            factor.solve_batch(&req.rhs)
        };
        Ok(ServeResponse { factor, solutions })
    }
}

impl Drop for FactorService {
    fn drop(&mut self) {
        // Closing the channel lets workers drain the queue and exit.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    fn opts() -> SympilerOptions {
        SympilerOptions::default()
    }

    #[test]
    fn structural_hash_is_pattern_and_options_keyed() {
        let a = gen::circuit_unsym(50, 4, 2, 3);
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= -3.5; // values must not matter
        }
        assert_eq!(structural_hash(&a, &opts()), structural_hash(&a2, &opts()));
        let b = gen::circuit_unsym(50, 4, 2, 4); // different pattern
        assert_ne!(structural_hash(&a, &opts()), structural_hash(&b, &opts()));
        let other = SympilerOptions {
            ordering: crate::Ordering::Colamd,
            ..opts()
        };
        assert_ne!(structural_hash(&a, &opts()), structural_hash(&a, &other));
    }

    #[test]
    fn same_pattern_different_options_are_distinct_entries() {
        let a = gen::circuit_unsym(40, 4, 2, 5);
        let cache = PlanCache::new(CacheConfig::default());
        let p1 = cache.get_or_compile(&a, &opts()).unwrap();
        let colamd = SympilerOptions {
            ordering: crate::Ordering::Colamd,
            ..opts()
        };
        let p2 = cache.get_or_compile(&a, &colamd).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
        // And each keeps answering its own options.
        assert!(Arc::ptr_eq(
            &p1,
            &cache.get_or_compile(&a, &opts()).unwrap()
        ));
        assert!(Arc::ptr_eq(
            &p2,
            &cache.get_or_compile(&a, &colamd).unwrap()
        ));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn hash_collision_is_rejected_by_exact_checks() {
        // Plant a foreign plan under pattern `a`'s key: the lookup
        // must see through the colliding hash (exact pattern check
        // fails), compile the right plan, and keep both in one bucket.
        let a = gen::circuit_unsym(40, 4, 2, 5);
        let b = gen::circuit_unsym(30, 4, 2, 6);
        let key = structural_hash(&a, &opts());
        let cache = PlanCache::new(CacheConfig::default());
        let foreign_lu = SympilerLu::compile(&b, &opts()).unwrap();
        cache.insert_raw(
            key,
            Arc::new(CachedPlan {
                key,
                opts: opts(),
                bytes: foreign_lu.plan().table_bytes(),
                lu: foreign_lu,
            }),
        );
        let p = cache.get_or_compile(&a, &opts()).unwrap();
        assert_eq!(p.plan().n(), 40, "must not serve the colliding plan");
        assert_eq!(cache.stats().misses, 1, "collision is a miss, not a hit");
        assert_eq!(cache.len(), 2, "collided entries coexist in the bucket");
        // Now both resolve correctly.
        assert!(Arc::ptr_eq(&p, &cache.get_or_compile(&a, &opts()).unwrap()));
        assert_eq!(cache.get_or_compile(&b, &opts()).unwrap().plan().n(), 30);
    }

    #[test]
    fn lru_eviction_under_entry_pressure() {
        let mats: Vec<_> = (0..3)
            .map(|s| gen::circuit_unsym(30 + s, 4, 2, s as u64))
            .collect();
        let cache = PlanCache::new(CacheConfig {
            max_entries: 2,
            max_bytes: 0,
        });
        cache.get_or_compile(&mats[0], &opts()).unwrap();
        cache.get_or_compile(&mats[1], &opts()).unwrap();
        // Touch 0 so 1 becomes the LRU victim.
        cache.get_or_compile(&mats[0], &opts()).unwrap();
        cache.get_or_compile(&mats[2], &opts()).unwrap();
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        // 0 and 2 are resident (hits); 1 was evicted (miss).
        let before = cache.stats().misses;
        cache.get_or_compile(&mats[0], &opts()).unwrap();
        cache.get_or_compile(&mats[2], &opts()).unwrap();
        assert_eq!(cache.stats().misses, before);
        cache.get_or_compile(&mats[1], &opts()).unwrap();
        assert_eq!(cache.stats().misses, before + 1, "LRU victim was 1");
    }

    #[test]
    fn byte_bound_evicts_and_stats_track_residency() {
        let a = gen::circuit_unsym(60, 4, 2, 1);
        let b = gen::circuit_unsym(70, 4, 2, 2);
        let probe = PlanCache::new(CacheConfig::default());
        let pa = probe.get_or_compile(&a, &opts()).unwrap();
        // Bound below the two plans' combined footprint: admitting the
        // second must evict the first.
        let cache = PlanCache::new(CacheConfig {
            max_entries: 0,
            max_bytes: pa.bytes() + pa.bytes() / 2,
        });
        cache.get_or_compile(&a, &opts()).unwrap();
        assert_eq!(cache.stats().bytes, pa.bytes());
        cache.get_or_compile(&b, &opts()).unwrap();
        let s = cache.stats();
        assert_eq!(s.entries, 1, "byte bound holds one plan");
        assert!(s.evictions >= 1);
        // Never evicts below one entry even when oversized.
        let tiny = PlanCache::new(CacheConfig {
            max_entries: 0,
            max_bytes: 1,
        });
        tiny.get_or_compile(&a, &opts()).unwrap();
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn cache_counters_land_on_the_profiler() {
        let prof = Arc::new(Profiler::enabled());
        let cache = PlanCache::with_profiler(CacheConfig::default(), Arc::clone(&prof));
        let a = gen::circuit_unsym(40, 4, 2, 9);
        cache.get_or_compile(&a, &opts()).unwrap();
        cache.get_or_compile(&a, &opts()).unwrap();
        assert_eq!(prof.counter_value("serve.cache.miss"), 1);
        assert_eq!(prof.counter_value("serve.cache.hit"), 1);
    }
}
