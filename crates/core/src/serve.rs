//! The serving layer: compile once, serve many.
//!
//! Sympiler's economics come from reuse — symbolic analysis is paid
//! once per sparsity pattern, then amortized over every numeric
//! factorization with that pattern. This module packages that reuse
//! for request-stream workloads (circuit transients, Newton loops,
//! parameter sweeps) where the caller cannot or should not manage
//! plan lifetimes by hand:
//!
//! * [`PlanCache`] — a concurrent cache of compiled [`SympilerLu`]
//!   plans keyed by a structural hash of `(pattern, options)`, with
//!   LRU eviction bounded by entry count and resident table bytes.
//!   Lookups return `Arc<CachedPlan>`: the plan's gather tables are
//!   shared, never cloned, and N threads factor against one plan
//!   concurrently (per-factorization state lives in a
//!   [`LuWorkspace`], not the plan).
//! * [`FactorService`] — a thread-pool front end accepting
//!   factor(+solve) requests, routing every request through one
//!   shared cache and per-worker workspaces.
//!
//! Batched numeric entry points live on the plan types themselves:
//! [`LuPlan::factor_batch`](crate::plan::lu::LuPlan::factor_batch)
//! (column-interleaved same-pattern batches) and
//! [`LuFactor::solve_batch`] (blocked multi-RHS sweeps).
//!
//! Everything here is observational-layer honest: cached, batched,
//! and served results are **bitwise identical** to direct
//! [`SympilerLu::compile`] + [`SympilerLu::factor`] calls.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as MemOrder};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::compile::{SympilerLu, SympilerOptions};
use crate::plan::lu::{LuFactor, LuPlanError, LuWorkspace};
use sympiler_obs::{Profiler, MAX_LANES};
use sympiler_sparse::CscMatrix;

/// Deterministic fault-injection hooks for the serving tier, used by
/// the robustness tests and `robust_bench` to prove that worker
/// failures neither hang a [`Ticket`] nor kill the [`FactorService`]
/// pool. Each `arm_*` call arms the *next* `n` jobs processed by any
/// worker; unarmed (the steady state) the hooks are two relaxed
/// atomic loads per job. Not part of the public API.
#[doc(hidden)]
pub mod fault {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static PANICS: AtomicUsize = AtomicUsize::new(0);
    static DEATHS: AtomicUsize = AtomicUsize::new(0);

    /// Arm a *soft* fault: the next `n` jobs panic inside the
    /// worker's `catch_unwind` guard, so the ticket receives
    /// [`super::ServeError::WorkerPanic`] and the worker survives.
    pub fn arm_worker_panics(n: usize) {
        PANICS.store(n, Ordering::SeqCst);
    }

    /// Arm a *hard* fault: the next `n` jobs kill their worker thread
    /// outside the guard, so the ticket's reply sender is dropped
    /// (mapped to [`super::ServeError::Disconnected`]) and the pool
    /// respawns the worker on the next submit.
    pub fn arm_worker_deaths(n: usize) {
        DEATHS.store(n, Ordering::SeqCst);
    }

    /// Disarm both hooks (test hygiene between cases).
    pub fn disarm() {
        PANICS.store(0, Ordering::SeqCst);
        DEATHS.store(0, Ordering::SeqCst);
    }

    fn take(c: &AtomicUsize) -> bool {
        c.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }

    pub(super) fn maybe_panic() {
        if take(&PANICS) {
            panic!("injected worker panic (fault hook)");
        }
    }

    pub(super) fn maybe_die() {
        if take(&DEATHS) {
            panic!("injected worker death (fault hook)");
        }
    }
}

/// What a serving request can fail with — the typed surface a
/// [`Ticket`] resolves to. `Plan` wraps the numeric/compile errors of
/// the pipeline; the other variants are serving-infrastructure
/// failures, which is exactly why they are distinct: a caller retries
/// a `WorkerPanic` or `Timeout`, but not a `Plan(ZeroPivot)`.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Compilation or factorization failed (root cause via
    /// [`std::error::Error::source`]).
    Plan(LuPlanError),
    /// The worker processing this request panicked; the panic was
    /// isolated and the worker kept serving.
    WorkerPanic {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// The worker died (or the service was dropped) before replying —
    /// the reply channel disconnected. The request may or may not
    /// have executed.
    Disconnected,
    /// [`Ticket::wait_timeout`] gave up waiting.
    Timeout {
        /// How long the caller waited.
        waited: Duration,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Plan(e) => write!(f, "serve: {e}"),
            ServeError::WorkerPanic { detail } => {
                write!(f, "serving worker panicked: {detail}")
            }
            ServeError::Disconnected => f.write_str("serving worker disconnected before replying"),
            ServeError::Timeout { waited } => {
                write!(f, "serve reply timed out after {waited:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LuPlanError> for ServeError {
    fn from(e: LuPlanError) -> Self {
        ServeError::Plan(e)
    }
}

/// FNV-1a, the same spirit as the vendored deterministic hashers:
/// stable across runs and platforms, so cache keys (and therefore
/// bench-reported hit rates) are reproducible.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_u64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// The cache key: a 64-bit FNV-1a digest of the sparsity pattern
/// (`n`, column pointers, row indices — **not** values) and every
/// compile-relevant field of [`SympilerOptions`]. Two requests whose
/// matrices share a pattern and whose options compare equal always
/// hash equal; the converse is only probabilistic, which is why
/// [`PlanCache`] verifies candidates with an exact pattern check and
/// an options comparison before reporting a hit.
pub fn structural_hash(a: &CscMatrix, opts: &SympilerOptions) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_u64(&mut h, a.n_cols() as u64);
    for &p in a.col_ptr() {
        fnv_u64(&mut h, p as u64);
    }
    for &r in a.row_idx() {
        fnv_u64(&mut h, r as u64);
    }
    // Options: every field that can change the compiled plan (or the
    // executor wrapped around it).
    fnv_u64(
        &mut h,
        (opts.vs_block as u64) | (opts.vi_prune as u64) << 1 | (opts.low_level as u64) << 2,
    );
    fnv_u64(&mut h, opts.max_supernode_width as u64);
    fnv_u64(&mut h, opts.vs_block_min_avg_size.to_bits());
    fnv_u64(&mut h, opts.peel_col_count as u64);
    fnv_u64(&mut h, opts.n_threads as u64);
    fnv_u64(&mut h, opts.ordering as u64);
    fnv_u64(&mut h, opts.block_lu as u64);
    fnv_u64(&mut h, opts.max_panel as u64);
    fnv_u64(&mut h, opts.relax_fill.to_bits());
    fnv_u64(&mut h, opts.relax_cols as u64);
    fnv_u64(&mut h, opts.mc64_scale as u64);
    fnv_u64(&mut h, opts.pre_pivot as u64);
    fnv_u64(&mut h, opts.profile as u64);
    fnv_u64(&mut h, opts.pivot_perturb.to_bits());
    fnv_u64(&mut h, opts.recovery.berr_tol.to_bits());
    fnv_u64(&mut h, opts.recovery.max_refine_iters as u64);
    fnv_u64(
        &mut h,
        (opts.recovery.allow_refactor as u64) | (opts.recovery.serve_escalate as u64) << 1,
    );
    h
}

/// Capacity bounds for a [`PlanCache`]. Eviction triggers when
/// **either** bound is exceeded and always keeps at least one entry
/// (a cache that cannot hold the plan it just compiled would thrash
/// forever).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident plans (0 = unbounded by count).
    pub max_entries: usize,
    /// Maximum summed [`table_bytes`](crate::plan::lu::LuPlan::table_bytes)
    /// across resident plans (0 = unbounded by size).
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            max_entries: 64,
            max_bytes: 256 << 20, // 256 MiB of compiled tables
        }
    }
}

/// A cache-resident compiled plan: the [`SympilerLu`] plus the key
/// and options it was admitted under and its charged byte footprint.
/// Derefs to [`SympilerLu`], so `plan.factor(&a)`,
/// `plan.factor_with(&a, &mut ws)`, and `plan.factor_batch(&refs)`
/// all work directly on the `Arc<CachedPlan>` handles the cache hands
/// out — shared, immutable, never cloned per request.
#[derive(Debug)]
pub struct CachedPlan {
    lu: SympilerLu,
    key: u64,
    opts: SympilerOptions,
    bytes: usize,
}

impl CachedPlan {
    /// The structural hash this plan is filed under.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The options the plan was compiled with.
    pub fn options(&self) -> &SympilerOptions {
        &self.opts
    }

    /// Bytes of compiled tables the cache charges this entry for.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The compiled pipeline itself (also reachable via `Deref`).
    pub fn lu(&self) -> &SympilerLu {
        &self.lu
    }
}

impl std::ops::Deref for CachedPlan {
    type Target = SympilerLu;
    fn deref(&self) -> &SympilerLu {
        &self.lu
    }
}

struct Entry {
    plan: Arc<CachedPlan>,
    last_use: u64,
}

#[derive(Default)]
struct CacheInner {
    /// Hash buckets: collisions coexist as a short in-bucket list and
    /// are disambiguated by exact pattern + options checks.
    buckets: HashMap<u64, Vec<Entry>>,
    entries: usize,
    bytes: usize,
}

/// Point-in-time counters of a [`PlanCache`] (monotonic except
/// `entries`/`bytes`, which track current residency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered by a resident plan.
    pub hits: u64,
    /// Requests that had to compile.
    pub misses: u64,
    /// Plans evicted under capacity pressure.
    pub evictions: u64,
    /// Currently resident plans.
    pub entries: usize,
    /// Currently resident compiled-table bytes.
    pub bytes: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, 0.0 before any traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent, bounded cache of compiled LU pipelines, keyed by
/// [`structural_hash`] and verified exactly on every hit.
///
/// Compilation happens **outside** the cache lock — a slow compile on
/// one pattern never blocks hits on others — with a re-check on
/// insert so racing compilers of the same pattern converge on one
/// resident plan. Eviction is LRU over a global use tick, bounded by
/// [`CacheConfig`].
///
/// ```
/// use std::sync::Arc;
/// use sympiler_core::serve::{CacheConfig, PlanCache};
/// use sympiler_core::SympilerOptions;
/// use sympiler_sparse::gen;
///
/// let cache = PlanCache::new(CacheConfig::default());
/// let mut a = gen::circuit_unsym(40, 4, 2, 7);
/// let opts = SympilerOptions::default();
///
/// let p1 = cache.get_or_compile(&a, &opts)?; // miss: compiles
/// for v in a.values_mut() {
///     *v *= 2.0; // values change, pattern fixed
/// }
/// let p2 = cache.get_or_compile(&a, &opts)?; // hit: same plan
/// assert!(Arc::ptr_eq(&p1, &p2));
///
/// let f = p2.factor(&a)?; // CachedPlan derefs to SympilerLu
/// assert!(f.l().nnz() > 0);
/// let s = cache.stats();
/// assert_eq!((s.hits, s.misses), (1, 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    config: CacheConfig,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Observability sink: `serve.cache.*` counters land here. A
    /// disabled profiler (the default) makes every hook a no-op.
    profiler: Arc<Profiler>,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("config", &self.config)
            .field("stats", &s)
            .finish()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl PlanCache {
    /// An empty cache with the given capacity bounds and no profiler.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_profiler(config, Arc::new(Profiler::disabled()))
    }

    /// An empty cache whose hit/miss/eviction counters also land on
    /// `profiler` as `serve.cache.hit` / `serve.cache.miss` /
    /// `serve.cache.eviction` — the same [`Profiler`] machinery the
    /// numeric phase records kernel counters into, so one snapshot
    /// carries both.
    pub fn with_profiler(config: CacheConfig, profiler: Arc<Profiler>) -> Self {
        Self {
            inner: Mutex::new(CacheInner::default()),
            config,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            profiler,
        }
    }

    /// The capacity bounds this cache enforces.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Lock the cache state, recovering from poison: a thread that
    /// panicked mid-mutation (e.g. an injected worker fault during
    /// `admit`) may have left `entries`/`bytes` out of sync with the
    /// buckets, so on poison both are re-derived from the buckets —
    /// the buckets themselves are always structurally valid because
    /// every mutation either pushes a complete entry or removes one.
    fn lock_inner(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|poisoned| {
            let mut inner = poisoned.into_inner();
            inner.entries = inner.buckets.values().map(Vec::len).sum();
            inner.bytes = inner.buckets.values().flatten().map(|e| e.plan.bytes).sum();
            self.inner.clear_poison();
            self.profiler.counter("serve.cache.poison_recovered").add(1);
            inner
        })
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let inner = self.lock_inner();
            (inner.entries, inner.bytes)
        };
        CacheStats {
            hits: self.hits.load(MemOrder::Relaxed),
            misses: self.misses.load(MemOrder::Relaxed),
            evictions: self.evictions.load(MemOrder::Relaxed),
            entries,
            bytes,
        }
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.lock_inner().entries
    }

    /// True when no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every resident plan (counters keep their totals).
    pub fn clear(&self) {
        let mut inner = self.lock_inner();
        inner.buckets.clear();
        inner.entries = 0;
        inner.bytes = 0;
        self.publish_residency(&inner);
    }

    /// Mirror current residency onto the profiler as *live* gauges, so
    /// eviction pressure is visible in traces and metrics snapshots
    /// without polling [`stats`](Self::stats).
    fn publish_residency(&self, inner: &CacheInner) {
        self.profiler
            .set_gauge("serve.cache.entries", inner.entries as f64);
        self.profiler
            .set_gauge("serve.cache.bytes", inner.bytes as f64);
    }

    /// The plan for `(a's pattern, opts)` — resident if cached,
    /// compiled (and admitted) otherwise. A hit requires the exact
    /// compiled pattern and equal options, not just a matching hash;
    /// values of `a` are irrelevant. Returns the same `Arc` to every
    /// concurrent caller of the same key, so gather tables exist once
    /// regardless of thread count.
    pub fn get_or_compile(
        &self,
        a: &CscMatrix,
        opts: &SympilerOptions,
    ) -> Result<Arc<CachedPlan>, LuPlanError> {
        self.get_or_compile_on_lane(a, opts, 0)
    }

    /// [`get_or_compile`](Self::get_or_compile), recording its
    /// `cache-lookup` / `compile` spans on the given profiler lane —
    /// the entry point [`FactorService`] workers use so each request's
    /// cache time lands on that worker's own trace lane.
    pub fn get_or_compile_on_lane(
        &self,
        a: &CscMatrix,
        opts: &SympilerOptions,
        lane: usize,
    ) -> Result<Arc<CachedPlan>, LuPlanError> {
        let key = structural_hash(a, opts);
        let now = self.tick.fetch_add(1, MemOrder::Relaxed);
        let span = self.profiler.begin(lane, "cache-lookup");
        let found = self.lookup(key, a, opts, now);
        self.profiler
            .end_with(span, &[("hit", found.is_some() as u64 as f64)]);
        if let Some(plan) = found {
            self.hits.fetch_add(1, MemOrder::Relaxed);
            self.profiler.counter("serve.cache.hit").add(1);
            return Ok(plan);
        }
        // Miss: compile outside the lock so a slow symbolic phase on
        // one pattern never serializes hits on others.
        self.misses.fetch_add(1, MemOrder::Relaxed);
        self.profiler.counter("serve.cache.miss").add(1);
        let span = self.profiler.begin(lane, "compile");
        let compiled = SympilerLu::compile(a, opts);
        self.profiler
            .end_with(span, &[("ok", compiled.is_ok() as u64 as f64)]);
        let lu = compiled?;
        let plan = Arc::new(CachedPlan {
            key,
            opts: opts.clone(),
            bytes: lu.table_bytes(),
            lu,
        });
        Ok(self.admit(key, a, opts, now, plan))
    }

    /// In-lock hit path: scan the key's bucket for an entry whose
    /// compiled pattern and options match exactly.
    fn lookup(
        &self,
        key: u64,
        a: &CscMatrix,
        opts: &SympilerOptions,
        now: u64,
    ) -> Option<Arc<CachedPlan>> {
        let mut inner = self.lock_inner();
        let bucket = inner.buckets.get_mut(&key)?;
        for e in bucket.iter_mut() {
            if e.plan.opts == *opts && e.plan.lu.plan().check_pattern(a).is_ok() {
                e.last_use = now;
                return Some(e.plan.clone());
            }
        }
        None
    }

    /// Insert a freshly compiled plan, unless a racing thread already
    /// admitted an equivalent one while we compiled — theirs wins (we
    /// drop ours), keeping exactly one resident plan per key.
    fn admit(
        &self,
        key: u64,
        a: &CscMatrix,
        opts: &SympilerOptions,
        now: u64,
        plan: Arc<CachedPlan>,
    ) -> Arc<CachedPlan> {
        let mut inner = self.lock_inner();
        if let Some(bucket) = inner.buckets.get_mut(&key) {
            for e in bucket.iter_mut() {
                if e.plan.opts == *opts && e.plan.lu.plan().check_pattern(a).is_ok() {
                    e.last_use = now;
                    return e.plan.clone();
                }
            }
        }
        inner.entries += 1;
        inner.bytes += plan.bytes;
        inner.buckets.entry(key).or_default().push(Entry {
            plan: plan.clone(),
            last_use: now,
        });
        self.evict_locked(&mut inner);
        self.publish_residency(&inner);
        plan
    }

    /// LRU eviction down to the configured bounds, never below one
    /// resident entry. Called with the lock held.
    fn evict_locked(&self, inner: &mut CacheInner) {
        let over = |inner: &CacheInner| {
            (self.config.max_entries > 0 && inner.entries > self.config.max_entries)
                || (self.config.max_bytes > 0 && inner.bytes > self.config.max_bytes)
        };
        while inner.entries > 1 && over(inner) {
            // O(entries) scan for the oldest use tick — entry counts
            // are small (bounded by config), the scan is cheaper than
            // maintaining an ordered side structure under churn.
            let mut oldest: Option<(u64, u64)> = None; // (last_use, key)
            for (&key, bucket) in &inner.buckets {
                for e in bucket {
                    if oldest.is_none_or(|(t, _)| e.last_use < t) {
                        oldest = Some((e.last_use, key));
                    }
                }
            }
            let Some((tick, key)) = oldest else { break };
            let bucket = inner.buckets.get_mut(&key).expect("key from scan");
            let idx = bucket
                .iter()
                .position(|e| e.last_use == tick)
                .expect("entry from scan");
            let victim = bucket.swap_remove(idx);
            if bucket.is_empty() {
                inner.buckets.remove(&key);
            }
            inner.entries -= 1;
            inner.bytes -= victim.plan.bytes;
            self.evictions.fetch_add(1, MemOrder::Relaxed);
            self.profiler.counter("serve.cache.eviction").add(1);
            self.profiler.journal().emit(
                "cache.eviction",
                &[
                    ("bytes", victim.plan.bytes as f64),
                    ("resident", inner.entries as f64),
                ],
                &[("key", format!("{key:#018x}").as_str())],
            );
        }
    }

    #[cfg(test)]
    /// Test hook: file `plan` under an arbitrary `key`, bypassing
    /// hashing — how the collision tests plant a same-key foreign
    /// entry that lookup must reject on the exact checks.
    fn insert_raw(&self, key: u64, plan: Arc<CachedPlan>) {
        let mut inner = self.lock_inner();
        let now = self.tick.fetch_add(1, MemOrder::Relaxed);
        inner.entries += 1;
        inner.bytes += plan.bytes;
        inner.buckets.entry(key).or_default().push(Entry {
            plan,
            last_use: now,
        });
    }
}

/// One unit of serving work: factor `a` under `opts` (through the
/// shared [`PlanCache`]), then solve for each supplied right-hand
/// side via the blocked multi-RHS sweep.
pub struct ServeRequest {
    /// The matrix to factor (values fresh per request, pattern
    /// typically shared across the stream).
    pub a: CscMatrix,
    /// Compile options — part of the cache key.
    pub opts: SympilerOptions,
    /// Right-hand sides to solve after factoring (may be empty).
    pub rhs: Vec<Vec<f64>>,
}

/// What a [`ServeRequest`] produces.
pub struct ServeResponse {
    /// The numeric factorization, bitwise identical to an uncached
    /// `compile()` + `factor()` of the same request.
    pub factor: LuFactor,
    /// One solution per requested right-hand side, in order.
    pub solutions: Vec<Vec<f64>>,
}

/// A pending [`FactorService`] reply.
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<Result<ServeResponse, ServeError>>,
}

impl Ticket {
    /// The request id assigned at submit time. Request ids are unique
    /// per service and appear as the `req` argument on the request's
    /// span tree and in journal events, so a slow or failed ticket can
    /// be matched to its trace.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the worker finishes this request. Never hangs on a
    /// dead worker and never panics: a dropped reply sender (worker
    /// died mid-request, or the service was dropped with the request
    /// still queued) resolves to [`ServeError::Disconnected`].
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// [`Self::wait`] with a deadline: gives up with
    /// [`ServeError::Timeout`] when no reply lands within `dur`. The
    /// ticket is consumed either way — a timed-out request's eventual
    /// result is discarded, exactly like a dropped ticket's.
    pub fn wait_timeout(self, dur: Duration) -> Result<ServeResponse, ServeError> {
        match self.rx.recv_timeout(dur) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::Timeout { waited: dur }),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Disconnected),
        }
    }
}

struct Job {
    /// Request id (service-wide, assigned at submit).
    id: u64,
    /// Submit timestamp on the cache profiler's clock, so the worker
    /// can backdate the request's root span and carve out queue-wait.
    submit_ns: u64,
    req: ServeRequest,
    reply: mpsc::Sender<Result<ServeResponse, ServeError>>,
}

/// Profiler lane for worker `slot`. Lane 0 stays the main/submit
/// lane; worker `s` records on lane `s + 1`. Slots beyond the lane
/// budget share the last lane (graceful degradation, never a panic).
fn worker_lane(slot: usize) -> usize {
    (slot + 1).min(MAX_LANES - 1)
}

/// A thread-pool front end over a shared [`PlanCache`]: submit
/// [`ServeRequest`]s, collect [`Ticket`]s, wait for
/// [`ServeResponse`]s. Every worker holds one long-lived
/// [`LuWorkspace`] and factors against cache-shared plans — steady
/// state does no symbolic work and no per-request table or
/// accumulator allocation. Dropping the service drains the queue and
/// joins the workers.
///
/// Fault tolerance: each request executes under `catch_unwind`, so a
/// panicking request resolves its own ticket to
/// [`ServeError::WorkerPanic`] and the worker keeps serving. Should a
/// worker thread die outright (a panic that escapes the request
/// guard), its in-flight ticket resolves to
/// [`ServeError::Disconnected`] (never a hang) and a sentinel guard
/// running during the very unwind spawns the replacement worker into
/// the same slot — queued and future requests are always drained, with
/// no reliance on a later `submit` noticing the death (the OS marks a
/// thread finished strictly *after* its ticket is woken, so
/// submit-side `is_finished` sweeps race and can strand a job). When
/// [`crate::robust::RecoveryPolicy::serve_escalate`] is set on a
/// request's options, a factorization failure is retried once through
/// the recovery ladder's cheap rungs (pivot perturbation + iterative
/// refinement) before the error is returned.
pub struct FactorService {
    tx: Option<mpsc::Sender<Job>>,
    /// One slot per worker; a sentinel overwrites its own slot with
    /// the replacement handle when its worker dies. The dead thread's
    /// handle is dropped (detached) — it is already past doing work.
    workers: Registry,
    /// Kept so respawned workers can join the same queue. Holding a
    /// receiver clone here also means the job channel only disconnects
    /// at drop, never because every worker died at once.
    #[allow(dead_code)]
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    cache: Arc<PlanCache>,
    /// Monotonic request-id source (ids are handed out at submit).
    req_seq: AtomicU64,
}

type Registry = Arc<Mutex<Vec<Option<std::thread::JoinHandle<()>>>>>;

/// Declared first in every worker closure, so its `Drop` runs during
/// the unwind of any panic that escapes the request guard: it spawns
/// a replacement worker into the dying worker's slot. Normal worker
/// exit (queue disconnected at service drop) does not respawn —
/// `thread::panicking()` is false.
struct Sentinel {
    slot: usize,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    cache: Arc<PlanCache>,
    registry: Registry,
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.cache.profiler.counter("serve.worker.respawn").add(1);
            self.cache.profiler.journal().emit(
                "worker.respawn",
                &[("slot", self.slot as f64)],
                &[],
            );
            let fresh =
                FactorService::spawn_worker(self.slot, &self.rx, &self.cache, &self.registry);
            self.registry.lock().unwrap_or_else(PoisonError::into_inner)[self.slot] = Some(fresh);
        }
    }
}

impl FactorService {
    /// Spawn `n_workers` serving threads (at least one) over `cache`.
    pub fn new(n_workers: usize, cache: Arc<PlanCache>) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let n = n_workers.max(1);
        let workers: Registry = Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        {
            // Register under the lock: a worker dying instantly blocks
            // in its sentinel until every slot holds its first handle,
            // so a replacement can never be clobbered by this loop.
            let mut reg = workers.lock().unwrap();
            for slot in 0..n {
                reg[slot] = Some(Self::spawn_worker(slot, &rx, &cache, &workers));
            }
        }
        Self {
            tx: Some(tx),
            workers,
            rx,
            cache,
            req_seq: AtomicU64::new(0),
        }
    }

    fn spawn_worker(
        slot: usize,
        rx: &Arc<Mutex<mpsc::Receiver<Job>>>,
        cache: &Arc<PlanCache>,
        registry: &Registry,
    ) -> std::thread::JoinHandle<()> {
        let rx = Arc::clone(rx);
        let cache = Arc::clone(cache);
        let registry = Arc::clone(registry);
        std::thread::spawn(move || {
            let sentinel = Sentinel {
                slot,
                rx: Arc::clone(&rx),
                cache: Arc::clone(&cache),
                registry,
            };
            // Name this worker's trace lane. Lane = slot + 1, so a
            // respawned worker re-claims the *same* tid and the trace
            // stays readable across sentinel restarts.
            let lane = worker_lane(slot);
            cache.profiler.name_lane(lane, &format!("worker-{slot}"));
            let mut ws = LuWorkspace::new();
            loop {
                // Hold the queue lock only for the dequeue; recover
                // the lock if a sibling died while holding it.
                let job = match rx.lock().unwrap_or_else(PoisonError::into_inner).recv() {
                    Ok(job) => job,
                    Err(_) => break, // service dropped, queue drained
                };
                // Hard-fault hook: dies here, after the queue lock is
                // released but before any reply — the ticket sees a
                // disconnect, exactly like a real worker death.
                fault::maybe_die();
                // Per-request span tree: the root spans submit → reply
                // (backdated to submit time), with queue-wait as its
                // first child and the run phases (cache-lookup /
                // compile / factor / solve / escalate) nesting under
                // it as they execute on this lane.
                let prof = &cache.profiler;
                let root = prof.begin_at(lane, "request", job.submit_ns);
                let queue = prof.begin_at(lane, "queue-wait", job.submit_ns);
                prof.end(queue);
                // Isolate the request: a panic anywhere in compile/
                // factor/solve resolves this ticket instead of
                // unwinding the worker. The workspace is plain
                // buffers the next request overwrites from scratch,
                // so reusing it across a caught panic is sound.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    fault::maybe_panic();
                    Self::run(&cache, &mut ws, &job.req, lane, job.id)
                }))
                .unwrap_or_else(|payload| {
                    cache.profiler.counter("serve.worker.panic").add(1);
                    let detail = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    cache.profiler.journal().emit(
                        "worker.panic",
                        &[("slot", slot as f64), ("req", job.id as f64)],
                        &[("detail", detail.as_str())],
                    );
                    Err(ServeError::WorkerPanic { detail })
                });
                prof.end_with(
                    root,
                    &[("req", job.id as f64), ("ok", result.is_ok() as u64 as f64)],
                );
                // A dropped ticket just discards the response.
                let _ = job.reply.send(result);
            }
            drop(sentinel); // normal exit: explicitly not a respawn
        })
    }

    /// The shared plan cache (e.g. for [`PlanCache::stats`]).
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Number of serving threads. The pool size is fixed: dead workers
    /// are replaced in-slot by their sentinels.
    pub fn n_workers(&self) -> usize {
        self.workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Enqueue a request; the returned [`Ticket`] resolves when a
    /// worker has factored (and solved) it. Each submission is stamped
    /// with a service-wide request id ([`Ticket::id`]) and its submit
    /// time, from which the worker derives the queue-wait span.
    pub fn submit(&self, req: ServeRequest) -> Ticket {
        let id = self.req_seq.fetch_add(1, MemOrder::Relaxed);
        let submit_ns = self.cache.profiler.now_ns();
        let (reply, rx) = mpsc::channel();
        self.tx
            .as_ref()
            .expect("sender lives until drop")
            .send(Job {
                id,
                submit_ns,
                req,
                reply,
            })
            .expect("service holds a receiver until drop");
        Ticket { id, rx }
    }

    /// Submit and wait: one factor (+ solves) through the pool.
    pub fn call(&self, req: ServeRequest) -> Result<ServeResponse, ServeError> {
        self.submit(req).wait()
    }

    fn run(
        cache: &PlanCache,
        ws: &mut LuWorkspace,
        req: &ServeRequest,
        lane: usize,
        req_id: u64,
    ) -> Result<ServeResponse, ServeError> {
        let prof = &cache.profiler;
        let plan = cache.get_or_compile_on_lane(&req.a, &req.opts, lane)?;
        let span = prof.begin(lane, "factor");
        let factored = plan.factor_with(&req.a, ws);
        prof.end_with(span, &[("ok", factored.is_ok() as u64 as f64)]);
        let factor = match factored {
            Ok(f) => f,
            Err(e) if req.opts.recovery.serve_escalate => {
                return Self::escalate(cache, ws, req, e, lane, req_id);
            }
            Err(e) => return Err(e.into()),
        };
        let perturb = factor.perturb_report();
        if !perturb.is_empty() {
            prof.journal().emit(
                "pivot.perturbed",
                &[
                    ("req", req_id as f64),
                    ("columns", perturb.columns.len() as f64),
                    ("threshold", perturb.threshold),
                ],
                &[],
            );
        }
        let solutions = if req.rhs.is_empty() {
            Vec::new()
        } else {
            let span = prof.begin(lane, "solve");
            let s = factor.solve_batch(&req.rhs);
            prof.end_with(span, &[("n_rhs", req.rhs.len() as f64)]);
            s
        };
        Ok(ServeResponse { factor, solutions })
    }

    /// Per-request retry with escalation (opted in via
    /// [`crate::robust::RecoveryPolicy::serve_escalate`]): re-factor
    /// through the same cache with static pivot perturbation forced
    /// on, then repair every requested solve by iterative refinement
    /// against the request's matrix. Succeeds only when every solve
    /// reaches the policy's berr tolerance; otherwise the *original*
    /// factor error is returned, so escalation never masks the root
    /// cause with a worse answer.
    fn escalate(
        cache: &PlanCache,
        ws: &mut LuWorkspace,
        req: &ServeRequest,
        original: LuPlanError,
        lane: usize,
        req_id: u64,
    ) -> Result<ServeResponse, ServeError> {
        let prof = &cache.profiler;
        cache.profiler.counter("serve.escalate").add(1);
        prof.journal().emit(
            "serve.escalate",
            &[("req", req_id as f64)],
            &[("cause", format!("{original}").as_str())],
        );
        let span = prof.begin(lane, "escalate");
        let result = Self::escalate_inner(cache, ws, req, &original, lane);
        prof.end_with(
            span,
            &[
                ("req", req_id as f64),
                ("recovered", result.is_ok() as u64 as f64),
            ],
        );
        if result.is_ok() {
            cache.profiler.counter("serve.escalate.recovered").add(1);
            prof.journal()
                .emit("serve.escalate.recovered", &[("req", req_id as f64)], &[]);
        }
        result
    }

    fn escalate_inner(
        cache: &PlanCache,
        ws: &mut LuWorkspace,
        req: &ServeRequest,
        original: &LuPlanError,
        lane: usize,
    ) -> Result<ServeResponse, ServeError> {
        let mut opts = req.opts.clone();
        if opts.pivot_perturb == 0.0 {
            // √ε-scale: the conventional static-perturbation setting.
            opts.pivot_perturb = 1e-8;
        }
        let Ok(plan) = cache.get_or_compile_on_lane(&req.a, &opts, lane) else {
            return Err(original.clone().into());
        };
        let Ok(factor) = plan.factor_with(&req.a, ws) else {
            return Err(original.clone().into());
        };
        let policy = &req.opts.recovery;
        let mut solutions = Vec::with_capacity(req.rhs.len());
        for b in &req.rhs {
            let (x, report) =
                factor.solve_refined(&req.a, b, policy.berr_tol, policy.max_refine_iters);
            if !report.converged {
                return Err(original.clone().into());
            }
            solutions.push(x);
        }
        Ok(ServeResponse { factor, solutions })
    }
}

impl Drop for FactorService {
    fn drop(&mut self) {
        // Closing the channel lets workers drain the queue and exit.
        drop(self.tx.take());
        // `self.workers` is an Arc shared with the sentinels, so lock
        // rather than get_mut. Take the handles out before joining —
        // a sentinel firing mid-drop writes its replacement into the
        // emptied slot; that replacement sees the closed channel and
        // exits on its own (its handle is simply never joined).
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter_mut()
            .filter_map(Option::take)
            .collect();
        for w in handles {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    fn opts() -> SympilerOptions {
        SympilerOptions::default()
    }

    #[test]
    fn structural_hash_is_pattern_and_options_keyed() {
        let a = gen::circuit_unsym(50, 4, 2, 3);
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= -3.5; // values must not matter
        }
        assert_eq!(structural_hash(&a, &opts()), structural_hash(&a2, &opts()));
        let b = gen::circuit_unsym(50, 4, 2, 4); // different pattern
        assert_ne!(structural_hash(&a, &opts()), structural_hash(&b, &opts()));
        let other = SympilerOptions {
            ordering: crate::Ordering::Colamd,
            ..opts()
        };
        assert_ne!(structural_hash(&a, &opts()), structural_hash(&a, &other));
    }

    #[test]
    fn same_pattern_different_options_are_distinct_entries() {
        let a = gen::circuit_unsym(40, 4, 2, 5);
        let cache = PlanCache::new(CacheConfig::default());
        let p1 = cache.get_or_compile(&a, &opts()).unwrap();
        let colamd = SympilerOptions {
            ordering: crate::Ordering::Colamd,
            ..opts()
        };
        let p2 = cache.get_or_compile(&a, &colamd).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
        // And each keeps answering its own options.
        assert!(Arc::ptr_eq(
            &p1,
            &cache.get_or_compile(&a, &opts()).unwrap()
        ));
        assert!(Arc::ptr_eq(
            &p2,
            &cache.get_or_compile(&a, &colamd).unwrap()
        ));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn hash_collision_is_rejected_by_exact_checks() {
        // Plant a foreign plan under pattern `a`'s key: the lookup
        // must see through the colliding hash (exact pattern check
        // fails), compile the right plan, and keep both in one bucket.
        let a = gen::circuit_unsym(40, 4, 2, 5);
        let b = gen::circuit_unsym(30, 4, 2, 6);
        let key = structural_hash(&a, &opts());
        let cache = PlanCache::new(CacheConfig::default());
        let foreign_lu = SympilerLu::compile(&b, &opts()).unwrap();
        cache.insert_raw(
            key,
            Arc::new(CachedPlan {
                key,
                opts: opts(),
                bytes: foreign_lu.table_bytes(),
                lu: foreign_lu,
            }),
        );
        let p = cache.get_or_compile(&a, &opts()).unwrap();
        assert_eq!(p.plan().n(), 40, "must not serve the colliding plan");
        assert_eq!(cache.stats().misses, 1, "collision is a miss, not a hit");
        assert_eq!(cache.len(), 2, "collided entries coexist in the bucket");
        // Now both resolve correctly.
        assert!(Arc::ptr_eq(&p, &cache.get_or_compile(&a, &opts()).unwrap()));
        assert_eq!(cache.get_or_compile(&b, &opts()).unwrap().plan().n(), 30);
    }

    #[test]
    fn lru_eviction_under_entry_pressure() {
        let mats: Vec<_> = (0..3)
            .map(|s| gen::circuit_unsym(30 + s, 4, 2, s as u64))
            .collect();
        let cache = PlanCache::new(CacheConfig {
            max_entries: 2,
            max_bytes: 0,
        });
        cache.get_or_compile(&mats[0], &opts()).unwrap();
        cache.get_or_compile(&mats[1], &opts()).unwrap();
        // Touch 0 so 1 becomes the LRU victim.
        cache.get_or_compile(&mats[0], &opts()).unwrap();
        cache.get_or_compile(&mats[2], &opts()).unwrap();
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        // 0 and 2 are resident (hits); 1 was evicted (miss).
        let before = cache.stats().misses;
        cache.get_or_compile(&mats[0], &opts()).unwrap();
        cache.get_or_compile(&mats[2], &opts()).unwrap();
        assert_eq!(cache.stats().misses, before);
        cache.get_or_compile(&mats[1], &opts()).unwrap();
        assert_eq!(cache.stats().misses, before + 1, "LRU victim was 1");
    }

    #[test]
    fn byte_bound_evicts_and_stats_track_residency() {
        let a = gen::circuit_unsym(60, 4, 2, 1);
        let b = gen::circuit_unsym(70, 4, 2, 2);
        let probe = PlanCache::new(CacheConfig::default());
        let pa = probe.get_or_compile(&a, &opts()).unwrap();
        // Bound below the two plans' combined footprint: admitting the
        // second must evict the first.
        let cache = PlanCache::new(CacheConfig {
            max_entries: 0,
            max_bytes: pa.bytes() + pa.bytes() / 2,
        });
        cache.get_or_compile(&a, &opts()).unwrap();
        assert_eq!(cache.stats().bytes, pa.bytes());
        cache.get_or_compile(&b, &opts()).unwrap();
        let s = cache.stats();
        assert_eq!(s.entries, 1, "byte bound holds one plan");
        assert!(s.evictions >= 1);
        // Never evicts below one entry even when oversized.
        let tiny = PlanCache::new(CacheConfig {
            max_entries: 0,
            max_bytes: 1,
        });
        tiny.get_or_compile(&a, &opts()).unwrap();
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn cache_counters_land_on_the_profiler() {
        let prof = Arc::new(Profiler::enabled());
        let cache = PlanCache::with_profiler(CacheConfig::default(), Arc::clone(&prof));
        let a = gen::circuit_unsym(40, 4, 2, 9);
        cache.get_or_compile(&a, &opts()).unwrap();
        cache.get_or_compile(&a, &opts()).unwrap();
        assert_eq!(prof.counter_value("serve.cache.miss"), 1);
        assert_eq!(prof.counter_value("serve.cache.hit"), 1);
    }

    #[test]
    fn residency_gauges_are_live_and_evictions_are_journalled() {
        let prof = Arc::new(Profiler::enabled());
        let cache = PlanCache::with_profiler(
            CacheConfig {
                max_entries: 1,
                max_bytes: 0,
            },
            Arc::clone(&prof),
        );
        let a = gen::circuit_unsym(30, 4, 2, 1);
        let b = gen::circuit_unsym(31, 4, 2, 2);
        let pa = cache.get_or_compile(&a, &opts()).unwrap();
        let snap = prof.snapshot("after-a");
        assert_eq!(snap.gauge("serve.cache.entries"), Some(1.0));
        assert_eq!(snap.gauge("serve.cache.bytes"), Some(pa.bytes() as f64));
        // Admitting b evicts a (max one entry): the live gauges track
        // the new residency and the eviction lands in the journal.
        let pb = cache.get_or_compile(&b, &opts()).unwrap();
        let snap = prof.snapshot("after-b");
        assert_eq!(snap.gauge("serve.cache.entries"), Some(1.0));
        assert_eq!(snap.gauge("serve.cache.bytes"), Some(pb.bytes() as f64));
        let events = prof.journal().events();
        let ev = events
            .iter()
            .find(|e| e.kind == "cache.eviction")
            .expect("eviction journalled");
        assert!(ev
            .fields
            .iter()
            .any(|(k, v)| k == "bytes" && *v == pa.bytes() as f64));
        assert!(ev
            .notes
            .iter()
            .any(|(k, v)| k == "key" && v.starts_with("0x")));
        // clear() zeroes the live gauges.
        cache.clear();
        let snap = prof.snapshot("cleared");
        assert_eq!(snap.gauge("serve.cache.entries"), Some(0.0));
        assert_eq!(snap.gauge("serve.cache.bytes"), Some(0.0));
    }

    #[test]
    fn request_ids_are_unique_and_traced_on_worker_lanes() {
        let prof = Arc::new(Profiler::enabled());
        let cache = Arc::new(PlanCache::with_profiler(
            CacheConfig::default(),
            Arc::clone(&prof),
        ));
        let service = FactorService::new(2, Arc::clone(&cache));
        let a = gen::circuit_unsym(40, 4, 2, 9);
        let tickets: Vec<Ticket> = (0..6)
            .map(|_| {
                service.submit(ServeRequest {
                    a: a.clone(),
                    opts: opts(),
                    rhs: vec![vec![1.0; 40]],
                })
            })
            .collect();
        let ids: Vec<u64> = tickets.iter().map(Ticket::id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5], "ids are assigned in order");
        for t in tickets {
            t.wait().unwrap();
        }
        let snap = prof.snapshot("serve");
        // Every request produced a root span on a *worker* lane with
        // its id attached, and the tree accounts for queue-wait,
        // cache, factor, and solve time.
        let roots: Vec<_> = snap.spans_named("request").collect();
        assert_eq!(roots.len(), 6);
        let mut seen: Vec<u64> = roots
            .iter()
            .map(|s| {
                assert!(s.lane >= 1, "request spans live on worker lanes");
                s.args
                    .iter()
                    .find(|(k, _)| k == "req")
                    .expect("req id arg")
                    .1 as u64
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        for name in ["queue-wait", "cache-lookup", "factor", "solve"] {
            assert_eq!(
                snap.spans_named(name).count(),
                6,
                "each request records a {name} child"
            );
        }
        assert_eq!(snap.spans_named("compile").count(), 1, "one miss compiles");
        // Worker lanes carry stable thread names.
        assert_eq!(snap.thread_name(1), Some("worker-0"));
        assert_eq!(snap.thread_name(2), Some("worker-1"));
        // Children nest inside their roots in time: each root span
        // contains at least queue-wait, cache-lookup, and factor.
        for root in &roots {
            let end = root.start_ns + root.dur_ns;
            let children = snap
                .spans
                .iter()
                .filter(|s| {
                    s.lane == root.lane
                        && s.name != "request"
                        && s.start_ns >= root.start_ns
                        && s.start_ns + s.dur_ns <= end
                })
                .count();
            assert!(children >= 3, "request tree has its phase children");
        }
    }
}
