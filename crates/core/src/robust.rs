//! Layer 3 of the numerical recovery ladder: policy-driven escalation
//! around the compiled LU pipeline.
//!
//! The static-pivoting contract moves all pivoting decisions to
//! compile time, so the numeric phase has no dynamic escape hatch of
//! its own. The ladder supplies one, rung by rung, cheapest first:
//!
//! 1. **Accept** — factor through the compiled plan and take the
//!    direct solve when its componentwise backward error (berr) is
//!    already below tolerance. Zero extra cost on healthy inputs.
//! 2. **Refine** — run [`LuFactor::solve_refined`]'s residual/
//!    correction loop against the caller's original matrix. Repairs
//!    static pivot perturbation ([`PerturbReport`]) and pattern-only
//!    transversal growth for a few SpMV + triangular-solve passes,
//!    without recompiling.
//! 3. **Re-factor** — fall back to the coupled partial-pivoting
//!    Gilbert–Peierls baseline ([`GpLu`]) under the *same* pre-pivot
//!    and ordering knobs, refined the same way. Costs a full
//!    symbolic + numeric factorization, but survives inputs whose
//!    static pivot sequence is numerically hopeless.
//! 4. **Fail** — a typed [`RecoveryError`] carrying the full
//!    diagnostic trail of everything the ladder tried.
//!
//! Every rung emits a `robust.*` counter on the compiled profiler, so
//! a serving deployment can watch how often requests escalate. Each
//! escalation (and final exhaustion) is additionally journalled on the
//! profiler's [`sympiler_obs::EventJournal`] as a `robust.escalate` /
//! `robust.exhausted` event carrying the observed berr and cause —
//! the discrete incident record a histogram cannot hold.
//!
//! [`LuFactor::solve_refined`]: crate::plan::lu::LuFactor::solve_refined
//! [`PerturbReport`]: crate::plan::lu::PerturbReport

use crate::compile::{SympilerLu, SympilerOptions};
use crate::plan::lu::{refine_with, LuPlanError, RefineReport};
use sympiler_solvers::lu::LuError;
use sympiler_solvers::{GpLu, Pivoting};
use sympiler_sparse::ops::componentwise_berr;
use sympiler_sparse::CscMatrix;

/// Escalation policy for the recovery ladder — carried on
/// [`SympilerOptions::recovery`] so it participates in plan-cache
/// identity and reaches the serving tier unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Componentwise backward-error tolerance for accepting a solve
    /// (every rung targets this).
    pub berr_tol: f64,
    /// Correction-iteration cap for the refinement rungs.
    pub max_refine_iters: usize,
    /// Permit the last-resort re-factorization through the coupled
    /// partial-pivoting baseline. Off caps the ladder at refinement.
    pub allow_refactor: bool,
    /// Serving tier only: when a [`crate::serve::FactorService`]
    /// request fails to factor, retry it through [`RobustLu::solve`]
    /// instead of returning the factor error. Off by default — the
    /// service's bitwise-reply contract is the conservative choice.
    pub serve_escalate: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            berr_tol: 1e-12,
            max_refine_iters: 10,
            allow_refactor: true,
            serve_escalate: false,
        }
    }
}

/// The rung of the ladder that produced an accepted solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Direct solve through the compiled plan was already below
    /// tolerance.
    Accept,
    /// Iterative refinement around the compiled factors converged.
    Refine,
    /// The partial-pivoting baseline (plus refinement) converged.
    Refactor,
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Rung::Accept => "accept",
            Rung::Refine => "refine",
            Rung::Refactor => "refactor",
        })
    }
}

/// One entry of the diagnostic trail: what a rung observed before the
/// ladder moved on (or stopped).
#[derive(Debug, Clone, PartialEq)]
pub enum TrailStep {
    /// The compiled plan's factorization failed outright.
    FactorFailed(LuPlanError),
    /// The direct solve's berr exceeded tolerance.
    BerrAboveTol { berr: f64, tol: f64 },
    /// Refinement around the compiled factors ran but did not
    /// converge.
    RefineStalled(RefineReport),
    /// The policy forbids the re-factorization rung.
    RefactorDisabled,
    /// The partial-pivoting baseline failed to factor.
    RefactorFailed(LuError),
    /// Refinement around the baseline factors did not converge either.
    RefactorStalled(RefineReport),
}

impl std::fmt::Display for TrailStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrailStep::FactorFailed(e) => write!(f, "plan factorization failed: {e}"),
            TrailStep::BerrAboveTol { berr, tol } => {
                write!(f, "direct solve berr {berr:.3e} above tol {tol:.3e}")
            }
            TrailStep::RefineStalled(r) => write!(
                f,
                "refinement stalled at berr {:.3e} after {} iterations",
                r.final_berr, r.iterations
            ),
            TrailStep::RefactorDisabled => f.write_str("re-factorization disabled by policy"),
            TrailStep::RefactorFailed(e) => write!(f, "baseline factorization failed: {e}"),
            TrailStep::RefactorStalled(r) => write!(
                f,
                "baseline refinement stalled at berr {:.3e} after {} iterations",
                r.final_berr, r.iterations
            ),
        }
    }
}

/// Why the ladder ultimately gave up (the root cause for
/// [`std::error::Error::source`] chaining).
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryCause {
    /// The compiled plan failed and escalation could not produce a
    /// solution either.
    Plan(LuPlanError),
    /// The last-resort baseline factorization failed.
    Baseline(LuError),
    /// Everything factored, but no rung reached the tolerance.
    BerrAboveTol { berr: f64, tol: f64 },
}

/// The ladder ran out of rungs: every recovery attempt, in order, plus
/// the root cause. `Display` prints the cause; the trail is for logs
/// and post-mortems.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryError {
    /// Everything the ladder tried, in order.
    pub trail: Vec<TrailStep>,
    /// The final, decisive failure.
    pub cause: RecoveryCause,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cause {
            RecoveryCause::Plan(e) => write!(f, "recovery exhausted: plan error: {e}"),
            RecoveryCause::Baseline(e) => write!(f, "recovery exhausted: baseline error: {e}"),
            RecoveryCause::BerrAboveTol { berr, tol } => write!(
                f,
                "recovery exhausted: best berr {berr:.3e} above tol {tol:.3e}"
            ),
        }?;
        write!(f, " (trail:")?;
        for (i, step) in self.trail.iter().enumerate() {
            let sep = if i == 0 { " " } else { "; " };
            write!(f, "{sep}{step}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.cause {
            RecoveryCause::Plan(e) => Some(e),
            RecoveryCause::Baseline(e) => Some(e),
            RecoveryCause::BerrAboveTol { .. } => None,
        }
    }
}

/// A solution the ladder accepted, with its provenance.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The solution, in original coordinates.
    pub x: Vec<f64>,
    /// Which rung produced it.
    pub rung: Rung,
    /// Its componentwise backward error against the caller's matrix.
    pub berr: f64,
    /// The refinement report, when a refinement rung ran.
    pub refine: Option<RefineReport>,
    /// Diagnostic steps from the rungs that did *not* suffice.
    pub trail: Vec<TrailStep>,
}

/// The recovery driver: a compiled [`SympilerLu`] plus the policy and
/// knobs needed to escalate when its static pivot sequence fails
/// numerically.
///
/// ```
/// use sympiler_core::compile::{SympilerLu, SympilerOptions};
/// use sympiler_core::robust::{RobustLu, Rung};
///
/// let a = sympiler_sparse::gen::circuit_unsym(50, 4, 2, 7);
/// let robust = RobustLu::compile(&a, &SympilerOptions::default())?;
/// let b = vec![1.0; 50];
/// let r = robust.solve(&a, &b)?;
/// // A healthy matrix never escalates.
/// assert_eq!(r.rung, Rung::Accept);
/// assert!(r.berr <= 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RobustLu {
    lu: SympilerLu,
    opts: SympilerOptions,
}

impl RobustLu {
    /// Compile the underlying plan (including any `pivot_perturb`
    /// setting) and keep the options for the escalation rungs.
    pub fn compile(a: &CscMatrix, opts: &SympilerOptions) -> Result<Self, LuPlanError> {
        let lu = SympilerLu::compile(a, opts)?;
        Ok(Self {
            lu,
            opts: opts.clone(),
        })
    }

    /// Wrap an already-compiled pipeline.
    pub fn from_compiled(lu: SympilerLu, opts: SympilerOptions) -> Self {
        Self { lu, opts }
    }

    /// The compiled pipeline (rung 1 and 2's engine).
    pub fn lu(&self) -> &SympilerLu {
        &self.lu
    }

    /// The policy the ladder runs under.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.opts.recovery
    }

    /// Solve `A x = b`, climbing the ladder until a rung reaches the
    /// policy's berr tolerance: accept → refine → re-factor →
    /// [`RecoveryError`].
    pub fn solve(&self, a: &CscMatrix, b: &[f64]) -> Result<Recovered, RecoveryError> {
        let policy = &self.opts.recovery;
        let tol = policy.berr_tol;
        let prof = self.lu.profiler();
        let mut trail: Vec<TrailStep> = Vec::new();

        match self.lu.factor(a) {
            Err(e) => {
                prof.counter("robust.factor_fail").add(1);
                prof.journal().emit(
                    "robust.escalate",
                    &[],
                    &[("rung", "refactor"), ("cause", format!("{e}").as_str())],
                );
                trail.push(TrailStep::FactorFailed(e.clone()));
                self.refactor(a, b, trail, RecoveryCause::Plan(e))
            }
            Ok(f) => {
                // Rung 1: accept the direct solve when already good.
                let x = f.solve(b);
                let berr = componentwise_berr(a, &x, b);
                if berr <= tol {
                    prof.counter("robust.accept").add(1);
                    return Ok(Recovered {
                        x,
                        rung: Rung::Accept,
                        berr,
                        refine: None,
                        trail,
                    });
                }
                trail.push(TrailStep::BerrAboveTol { berr, tol });
                prof.journal().emit(
                    "robust.escalate",
                    &[("berr", berr), ("tol", tol)],
                    &[("rung", "refine")],
                );

                // Rung 2: refine around the compiled factors.
                let (x, report) = f.solve_refined(a, b, tol, policy.max_refine_iters);
                if report.converged {
                    prof.counter("robust.refine").add(1);
                    return Ok(Recovered {
                        x,
                        rung: Rung::Refine,
                        berr: report.final_berr,
                        refine: Some(report),
                        trail,
                    });
                }
                trail.push(TrailStep::RefineStalled(report.clone()));
                prof.journal().emit(
                    "robust.escalate",
                    &[("berr", report.final_berr), ("tol", tol)],
                    &[("rung", "refactor")],
                );

                let cause = RecoveryCause::BerrAboveTol {
                    berr: report.final_berr,
                    tol,
                };
                self.refactor(a, b, trail, cause)
            }
        }
    }

    /// Rung 3: the coupled partial-pivoting baseline under the same
    /// pre-pivot and ordering knobs, refined against the original
    /// matrix. `cause` is what the earlier rungs would report should
    /// this rung be unavailable or insufficient.
    fn refactor(
        &self,
        a: &CscMatrix,
        b: &[f64],
        mut trail: Vec<TrailStep>,
        cause: RecoveryCause,
    ) -> Result<Recovered, RecoveryError> {
        let policy = &self.opts.recovery;
        let prof = self.lu.profiler();
        if !policy.allow_refactor {
            prof.counter("robust.fail").add(1);
            prof.journal()
                .emit("robust.exhausted", &[], &[("reason", "refactor disabled")]);
            trail.push(TrailStep::RefactorDisabled);
            return Err(RecoveryError { trail, cause });
        }
        let tol = policy.berr_tol;
        let baseline = match GpLu::factor_prepivoted(
            a,
            Pivoting::Partial,
            self.opts.pre_pivot,
            self.opts.ordering,
        ) {
            Ok(f) => f,
            Err(e) => {
                prof.counter("robust.fail").add(1);
                prof.journal().emit(
                    "robust.exhausted",
                    &[],
                    &[("reason", format!("baseline: {e}").as_str())],
                );
                trail.push(TrailStep::RefactorFailed(e.clone()));
                return Err(RecoveryError {
                    trail,
                    cause: RecoveryCause::Baseline(e),
                });
            }
        };
        let (x, report) = refine_with(a, b, tol, policy.max_refine_iters, |rhs| {
            baseline.solve(rhs)
        });
        if report.converged {
            prof.counter("robust.refactor").add(1);
            return Ok(Recovered {
                x,
                rung: Rung::Refactor,
                berr: report.final_berr,
                refine: Some(report),
                trail,
            });
        }
        prof.counter("robust.fail").add(1);
        prof.journal().emit(
            "robust.exhausted",
            &[("berr", report.final_berr), ("tol", tol)],
            &[("reason", "baseline refinement stalled")],
        );
        trail.push(TrailStep::RefactorStalled(report.clone()));
        Err(RecoveryError {
            trail,
            cause: RecoveryCause::BerrAboveTol {
                berr: report.final_berr,
                tol,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_graph::transversal::PrePivot;
    use sympiler_sparse::gen;

    #[test]
    fn healthy_matrix_accepts_on_rung_one() {
        let a = gen::circuit_unsym(80, 4, 2, 7);
        let robust = RobustLu::compile(&a, &SympilerOptions::default()).unwrap();
        let b = vec![1.0; 80];
        let r = robust.solve(&a, &b).unwrap();
        assert_eq!(r.rung, Rung::Accept);
        assert!(r.berr <= 1e-12);
        assert!(r.trail.is_empty());
    }

    #[test]
    fn transversal_growth_recovers_by_refinement() {
        // The pattern-only transversal on a zero-diagonal circuit is
        // the motivating case: the static pivot sequence factors but
        // with large growth, and refinement repairs the solve without
        // recompiling.
        let a = gen::circuit_zero_diag(300, 4, 2, 206);
        let opts = SympilerOptions {
            pre_pivot: PrePivot::Transversal,
            ..SympilerOptions::default()
        };
        let robust = RobustLu::compile(&a, &opts).unwrap();
        let b: Vec<f64> = (0..a.n_rows()).map(|i| 1.0 + (i % 7) as f64).collect();
        let r = robust.solve(&a, &b).unwrap();
        assert!(r.berr <= 1e-12, "berr {} above tol", r.berr);
        assert!(
            matches!(r.rung, Rung::Accept | Rung::Refine),
            "should not need the baseline, got {:?}",
            r.rung
        );
    }

    fn dense2(v00: f64, v10: f64, v01: f64, v11: f64) -> CscMatrix {
        let mut t = sympiler_sparse::TripletMatrix::new(2, 2);
        t.push(0, 0, v00);
        t.push(1, 0, v10);
        t.push(0, 1, v01);
        t.push(1, 1, v11);
        t.to_csc().unwrap()
    }

    #[test]
    fn zero_pivot_escalates_to_baseline() {
        // Value-level pivot cancellation the static sequence cannot
        // survive: column 1 eliminates to an exact zero pivot.
        let healthy = dense2(1.0, 1.0, 2.0, 2.0 + 1e-3);
        let robust = RobustLu::compile(&healthy, &SympilerOptions::default()).unwrap();
        let b = vec![1.0, 2.0];
        let r = robust.solve(&healthy, &b).unwrap();
        assert_eq!(r.rung, Rung::Accept);
        // Same pattern, values that cancel the static pivot exactly:
        // the matrix is singular, so even the partial-pivoting rung
        // fails — the ladder must report a typed error whose trail
        // starts with the plan's factor failure.
        let singular = dense2(1.0, 1.0, 2.0, 2.0);
        let err = robust.solve(&singular, &b).unwrap_err();
        assert!(matches!(err.trail[0], TrailStep::FactorFailed(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn ill_scaled_pivot_recovers_without_refactoring() {
        // A 1e-300 static pivot produces 1e300 multipliers on a
        // perfectly well-conditioned matrix — yet refinement against
        // the original matrix repairs the solve, so the ladder never
        // has to pay for the baseline.
        let a = dense2(1.0, 1.0, 2.0, 3.0);
        let robust = RobustLu::compile(&a, &SympilerOptions::default()).unwrap();
        let ill = dense2(1e-300, 1.0, 1.0, 1.0);
        let r = robust.solve(&ill, &[1.0, 2.0]).unwrap();
        assert!(r.berr <= 1e-12, "berr {}", r.berr);
        assert!(matches!(r.rung, Rung::Refine | Rung::Refactor));
    }

    /// Pattern of a nonsingular 3×3 whose column-1 static pivot
    /// cancels *exactly* under elimination:
    /// `[[1,1,0],[1,1,1],[0,1,1]]` has determinant −1, but `u11 =
    /// 1 − 1·1 = 0`. No amount of refinement helps a failed
    /// factorization — only the partial-pivoting baseline does.
    fn cancelling3(d1: f64) -> CscMatrix {
        let mut t = sympiler_sparse::TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 1, d1);
        t.push(2, 1, 1.0);
        t.push(1, 2, 1.0);
        t.push(2, 2, 1.0);
        t.to_csc().unwrap()
    }

    #[test]
    fn exact_cancellation_recovers_via_baseline() {
        // Compile on healthy values (u11 = 3 − 1 = 2), then feed the
        // same pattern with values that cancel the pivot exactly.
        let robust = RobustLu::compile(&cancelling3(3.0), &SympilerOptions::default()).unwrap();
        let tricky = cancelling3(1.0);
        let b = vec![1.0, 2.0, 3.0];
        let r = robust.solve(&tricky, &b).unwrap();
        assert_eq!(r.rung, Rung::Refactor);
        assert!(r.berr <= 1e-12, "berr {}", r.berr);
        assert!(matches!(r.trail[0], TrailStep::FactorFailed(_)));
    }

    #[test]
    fn policy_can_disable_the_baseline() {
        let singular = dense2(1.0, 1.0, 2.0, 2.0);
        let opts = SympilerOptions {
            recovery: RecoveryPolicy {
                allow_refactor: false,
                ..RecoveryPolicy::default()
            },
            ..SympilerOptions::default()
        };
        let robust = RobustLu::compile(&singular, &opts).unwrap();
        let err = robust.solve(&singular, &[1.0, 2.0]).unwrap_err();
        assert!(err
            .trail
            .iter()
            .any(|s| matches!(s, TrailStep::RefactorDisabled)));
        assert!(matches!(err.cause, RecoveryCause::Plan(_)));
        use std::error::Error;
        assert!(err.source().is_some());
    }

    #[test]
    fn escalations_are_journalled_with_monotonic_seq() {
        let opts = SympilerOptions {
            profile: true,
            ..SympilerOptions::default()
        };
        let robust = RobustLu::compile(&cancelling3(3.0), &opts).unwrap();
        let tricky = cancelling3(1.0);
        let r = robust.solve(&tricky, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(r.rung, Rung::Refactor);
        let journal = robust.lu().profiler().journal();
        let events = journal.events();
        assert!(
            events.iter().any(|e| e.kind == "robust.escalate"
                && e.notes.iter().any(|(k, v)| k == "rung" && v == "refactor")),
            "escalation to the baseline must be journalled, got {events:?}"
        );
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // The unprofiled path journals nothing.
        let quiet = RobustLu::compile(&cancelling3(3.0), &SympilerOptions::default()).unwrap();
        quiet.solve(&tricky, &[1.0, 2.0, 3.0]).unwrap();
        assert!(quiet.lu().profiler().journal().is_empty());
    }

    #[test]
    fn counters_track_the_rungs() {
        let a = gen::circuit_unsym(50, 4, 2, 7);
        let opts = SympilerOptions {
            profile: true,
            ..SympilerOptions::default()
        };
        let robust = RobustLu::compile(&a, &opts).unwrap();
        robust.solve(&a, &vec![1.0; 50]).unwrap();
        assert_eq!(robust.lu().profiler().counter_value("robust.accept"), 1);
    }
}
