//! Structured event journal: discrete serving incidents (worker
//! panic/respawn, cache eviction, recovery-ladder escalation, perturbed
//! pivots) as JSONL with monotonic sequence numbers.
//!
//! Spans answer "where did the time go"; the journal answers "what
//! happened" — rare, discrete facts that would be invisible in a
//! latency histogram and awkward as counters. Each event carries a
//! global sequence number (total order across threads), a timestamp on
//! the owning profiler's epoch, a dotted `kind`, and flat numeric /
//! text fields.
//!
//! ## JSONL schema (`results/EVENTS_<experiment>.jsonl`)
//!
//! One event per line:
//!
//! ```json
//! {"seq": 0, "t_ns": 123456, "kind": "cache.eviction",
//!  "fields": {"bytes": 81920, "resident": 3}, "notes": {"key": "0x1d2c"}}
//! ```
//!
//! `seq` is strictly increasing from 0 within one journal — the
//! property `perf_gate` re-validates from the artifact alone.

use crate::json::{self, escape, number, Value};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// One journalled incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number, strictly increasing from 0.
    pub seq: u64,
    /// Nanoseconds since the journal's (= profiler's) epoch.
    pub t_ns: u64,
    /// Dotted event kind, e.g. `worker.panic`, `cache.eviction`.
    pub kind: String,
    /// Numeric payload fields.
    pub fields: Vec<(String, f64)>,
    /// Text payload fields.
    pub notes: Vec<(String, String)>,
}

struct JournalInner {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

/// An append-only incident journal. A disabled journal (what a
/// disabled [`crate::Profiler`] hands out) is inert: `emit` is a
/// branch and nothing more.
pub struct EventJournal {
    inner: Option<JournalInner>,
}

impl EventJournal {
    /// An inert journal (const-constructible).
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording journal with its epoch at the call instant.
    pub fn enabled() -> Self {
        Self::with_epoch(Instant::now())
    }

    /// A recording journal timestamping against the given epoch (used
    /// by [`crate::Profiler`] so journal times align with span times).
    pub fn with_epoch(epoch: Instant) -> Self {
        Self {
            inner: Some(JournalInner {
                epoch,
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Append an event. Sequence number and timestamp are assigned
    /// under the journal lock, so `seq` order equals append order.
    pub fn emit(&self, kind: &str, fields: &[(&str, f64)], notes: &[(&str, &str)]) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut ev = inner.events.lock().unwrap();
        let seq = ev.len() as u64;
        ev.push(Event {
            seq,
            t_ns: inner.epoch.elapsed().as_nanos() as u64,
            kind: kind.to_string(),
            fields: fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            notes: notes
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.events.lock().unwrap().len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.events.lock().unwrap().clone())
    }

    /// Serialize all events as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let fields: Vec<String> = e
                .fields
                .iter()
                .map(|(k, v)| format!("\"{}\": {}", escape(k), number(*v)))
                .collect();
            let notes: Vec<String> = e
                .notes
                .iter()
                .map(|(k, v)| format!("\"{}\": \"{}\"", escape(k), escape(v)))
                .collect();
            out.push_str(&format!(
                "{{\"seq\": {}, \"t_ns\": {}, \"kind\": \"{}\", \
                 \"fields\": {{{}}}, \"notes\": {{{}}}}}\n",
                e.seq,
                e.t_ns,
                escape(&e.kind),
                fields.join(", "),
                notes.join(", ")
            ));
        }
        out
    }

    /// Parse a JSONL journal written by [`to_jsonl`](Self::to_jsonl).
    pub fn parse_jsonl(s: &str) -> Result<Vec<Event>, String> {
        let mut events = Vec::new();
        for (lineno, line) in s.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let seq = v
                .get("seq")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("line {}: missing seq", lineno + 1))?
                as u64;
            let t_ns = v
                .get("t_ns")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("line {}: missing t_ns", lineno + 1))?
                as u64;
            let kind = v
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: missing kind", lineno + 1))?
                .to_string();
            let mut fields = Vec::new();
            if let Some(f) = v.get("fields") {
                for (k, fv) in f.fields() {
                    if let Some(x) = fv.as_f64() {
                        fields.push((k.clone(), x));
                    }
                }
            }
            let mut notes = Vec::new();
            if let Some(n) = v.get("notes") {
                for (k, nv) in n.fields() {
                    if let Some(x) = nv.as_str() {
                        notes.push((k.clone(), x.to_string()));
                    }
                }
            }
            events.push(Event {
                seq,
                t_ns,
                kind,
                fields,
                notes,
            });
        }
        Ok(events)
    }

    /// Write the journal to `results/EVENTS_<experiment>.jsonl`,
    /// announce the path, and return it.
    pub fn write_results(&self, experiment: &str) -> std::io::Result<PathBuf> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("EVENTS_{experiment}.jsonl"));
        std::fs::write(&path, self.to_jsonl())?;
        println!("[events saved to {}]", path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_is_inert() {
        let j = EventJournal::disabled();
        assert!(!j.is_enabled());
        j.emit("x", &[("a", 1.0)], &[]);
        assert!(j.is_empty());
        assert_eq!(j.to_jsonl(), "");
    }

    #[test]
    fn seq_is_strictly_increasing_across_threads() {
        let j = EventJournal::enabled();
        std::thread::scope(|s| {
            for t in 0..8 {
                let j = &j;
                s.spawn(move || {
                    for i in 0..50 {
                        j.emit("race", &[("t", t as f64), ("i", i as f64)], &[]);
                    }
                });
            }
        });
        let ev = j.events();
        assert_eq!(ev.len(), 400);
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let j = EventJournal::enabled();
        j.emit(
            "cache.eviction",
            &[("bytes", 81920.0), ("resident", 3.0)],
            &[("key", "0x1d2c")],
        );
        j.emit(
            "worker.panic",
            &[("slot", 1.0)],
            &[("detail", "bad \"rhs\"")],
        );
        let text = j.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = EventJournal::parse_jsonl(&text).unwrap();
        assert_eq!(back, j.events());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(EventJournal::parse_jsonl("{\"seq\": 0}").is_err());
        assert!(EventJournal::parse_jsonl("not json").is_err());
    }
}
