//! Metrics: log-bucketed latency histograms with a lock-free record
//! path, a named registry alongside the profiler's counters/gauges,
//! Prometheus-style text exposition, and a JSON snapshot writer
//! (`results/METRICS_<experiment>.json`) built on [`crate::json`].
//!
//! ## Bucket scheme
//!
//! Buckets are log-linear (HdrHistogram-style): each power-of-two
//! octave is split into [`SUB_BUCKETS`] = 8 linear sub-buckets, so the
//! relative bucket width is at most `1/8` = 12.5% everywhere. Values
//! below 8 get exact unit buckets. With 64-bit values this needs
//! [`N_BUCKETS`] = 496 buckets, small enough to keep one `AtomicU64`
//! per bucket: `record` is an index computation plus three relaxed
//! `fetch_add`s — no locks, safe from any number of worker threads.
//!
//! Quantiles are read from bucket *upper* bounds, so a reported p99 is
//! an overestimate by at most one bucket (≤12.5% relative). Histograms
//! with identical contents report identical quantiles, which is what
//! lets `serve_bench` print p50/p99/p999 straight from the same
//! histogram it snapshots into `METRICS_*.json`.

use crate::json::{self, escape, number, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Linear sub-buckets per power-of-two octave (must be a power of two).
pub const SUB_BUCKETS: u64 = 8;
const SUB_LOG2: u32 = 3;
/// Total bucket count covering the full `u64` range.
pub const N_BUCKETS: usize = ((64 - SUB_LOG2 as usize) + 1) * SUB_BUCKETS as usize;

/// Bucket index for a value (log-linear; see module docs).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let sub = (v >> (e - SUB_LOG2)) - SUB_BUCKETS;
        ((e - SUB_LOG2 + 1) as u64 * SUB_BUCKETS + sub) as usize
    }
}

/// Inclusive `[lo, hi]` value range of a bucket.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        (idx, idx)
    } else {
        let g = idx / SUB_BUCKETS;
        let sub = idx % SUB_BUCKETS;
        let lo = (SUB_BUCKETS + sub) << (g - 1);
        let width = 1u64 << (g - 1);
        (lo, lo + (width - 1))
    }
}

/// A mergeable log-bucketed histogram of `u64` samples (nanoseconds by
/// convention). Recording is lock-free; all methods take `&self`, so a
/// histogram is shared across worker threads behind an `Arc`.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free (three relaxed `fetch_add`s).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Fold another histogram's samples into this one (used to merge
    /// per-worker histograms into a service-wide one).
    pub fn merge(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(&other.buckets) {
            let v = o.load(Ordering::Relaxed);
            if v != 0 {
                b.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket holding the rank-`ceil(q·count)` sample; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(N_BUCKETS - 1).1
    }

    /// Snapshot into a plain summary (non-empty buckets only).
    pub fn summarize(&self, name: &str) -> HistogramSummary {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c != 0).then(|| {
                    let (lo, hi) = bucket_bounds(i);
                    (lo, hi, c)
                })
            })
            .collect();
        HistogramSummary {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            buckets,
        }
    }
}

/// A point-in-time summary of one histogram: totals, the four standard
/// quantiles, and the non-empty `(lo, hi, count)` buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Named histograms, counters, and gauges for a serving process.
///
/// Registration (`histogram`, `counter`) takes a short lock; the
/// returned handles record lock-free, so hot paths hoist the handle
/// once. Gauges use *set* semantics (last write per name wins), unlike
/// the profiler's append-only gauges.
#[derive(Default)]
pub struct MetricsRegistry {
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    gauges: Mutex<Vec<(String, f64)>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (creating on first use) the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut h = self.histograms.lock().unwrap();
        if let Some((_, a)) = h.iter().find(|(n, _)| n == name) {
            return a.clone();
        }
        let a = Arc::new(Histogram::new());
        h.push((name.to_string(), a.clone()));
        a
    }

    /// Get (creating on first use) the named counter handle.
    pub fn counter(&self, name: &str) -> crate::Counter {
        let mut c = self.counters.lock().unwrap();
        if let Some((_, a)) = c.iter().find(|(n, _)| n == name) {
            return crate::Counter::from_shared(a.clone());
        }
        let a = Arc::new(AtomicU64::new(0));
        c.push((name.to_string(), a.clone()));
        crate::Counter::from_shared(a)
    }

    /// Set a gauge (replaces any previous value of the same name).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut g = self.gauges.lock().unwrap();
        match g.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = value,
            None => g.push((name.to_string(), value)),
        }
    }

    /// Snapshot everything into a serializable [`MetricsSnapshot`].
    pub fn snapshot(&self, experiment: &str) -> MetricsSnapshot {
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| h.summarize(n))
            .collect();
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, a)| (n.clone(), a.load(Ordering::Relaxed)))
            .collect();
        let gauges = self.gauges.lock().unwrap().clone();
        MetricsSnapshot {
            experiment: experiment.to_string(),
            histograms,
            counters,
            gauges,
        }
    }
}

/// A serializable snapshot of a [`MetricsRegistry`]: the payload of
/// `results/METRICS_<experiment>.json` and of the Prometheus text
/// exposition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub experiment: String,
    pub histograms: Vec<HistogramSummary>,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; dots become `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl MetricsSnapshot {
    /// Look up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Absorb a profiler snapshot's counters and gauges, so one
    /// `METRICS_*.json` carries both the registry's histograms and the
    /// profiler's serving counters (cache hits, worker respawns, ...).
    pub fn absorb_profile(&mut self, p: &crate::Profile) {
        for (n, v) in &p.counters {
            self.counters.push((n.clone(), *v));
        }
        for (n, v) in &p.gauges {
            self.gauges.push((n.clone(), *v));
        }
    }

    /// Prometheus text exposition (histogram with cumulative `le`
    /// buckets, counters, gauges).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for h in &self.histograms {
            let name = prom_name(&h.name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for &(_, hi, c) in &h.buckets {
                cum += c;
                out.push_str(&format!("{name}_bucket{{le=\"{hi}\"}} {cum}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        for (n, v) in &self.counters {
            let name = prom_name(n);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (n, v) in &self.gauges {
            let name = prom_name(n);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", number(*v)));
        }
        out
    }

    /// Serialize to the METRICS json schema (see ARCHITECTURE.md).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            escape(&self.experiment)
        ));
        out.push_str("  \"histograms\": [\n");
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|h| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|&(lo, hi, c)| format!("{{\"lo\": {lo}, \"hi\": {hi}, \"count\": {c}}}"))
                    .collect();
                format!(
                    "    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \
                     \"quantiles\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}}, \
                     \"buckets\": [{}]}}",
                    escape(&h.name),
                    h.count,
                    h.sum,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.p999,
                    buckets.join(", ")
                )
            })
            .collect();
        out.push_str(&hists.join(",\n"));
        out.push_str("\n  ],\n");
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("    {{\"name\": \"{}\", \"value\": {v}}}", escape(n)))
            .collect();
        out.push_str("  \"counters\": [\n");
        out.push_str(&counters.join(",\n"));
        out.push_str("\n  ],\n");
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(n, v)| {
                format!(
                    "    {{\"name\": \"{}\", \"value\": {}}}",
                    escape(n),
                    number(*v)
                )
            })
            .collect();
        out.push_str("  \"gauges\": [\n");
        out.push_str(&gauges.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a snapshot written by [`to_json`](Self::to_json).
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = json::parse(s)?;
        let experiment = v
            .get("experiment")
            .and_then(Value::as_str)
            .ok_or("missing \"experiment\" string")?
            .to_string();
        let mut histograms = Vec::new();
        for h in v
            .get("histograms")
            .and_then(Value::as_array)
            .ok_or("missing \"histograms\" array")?
        {
            let name = h
                .get("name")
                .and_then(Value::as_str)
                .ok_or("histogram missing name")?
                .to_string();
            let req = |k: &str| -> Result<u64, String> {
                h.get(k)
                    .and_then(Value::as_f64)
                    .map(|x| x as u64)
                    .ok_or_else(|| format!("histogram {name} missing {k}"))
            };
            let q = h.get("quantiles").ok_or("histogram missing quantiles")?;
            let quant = |k: &str| -> Result<u64, String> {
                q.get(k)
                    .and_then(Value::as_f64)
                    .map(|x| x as u64)
                    .ok_or_else(|| format!("histogram {name} missing quantile {k}"))
            };
            let mut buckets = Vec::new();
            for b in h
                .get("buckets")
                .and_then(Value::as_array)
                .ok_or("histogram missing buckets")?
            {
                let f = |k: &str| -> Result<u64, String> {
                    b.get(k)
                        .and_then(Value::as_f64)
                        .map(|x| x as u64)
                        .ok_or_else(|| format!("bucket missing {k}"))
                };
                buckets.push((f("lo")?, f("hi")?, f("count")?));
            }
            histograms.push(HistogramSummary {
                count: req("count")?,
                sum: req("sum")?,
                p50: quant("p50")?,
                p90: quant("p90")?,
                p99: quant("p99")?,
                p999: quant("p999")?,
                name,
                buckets,
            });
        }
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        for (kind, as_counter) in [("counters", true), ("gauges", false)] {
            let Some(items) = v.get(kind).and_then(Value::as_array) else {
                continue;
            };
            for item in items {
                let name = item
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("entry missing name")?
                    .to_string();
                let value = item
                    .get("value")
                    .and_then(Value::as_f64)
                    .ok_or("entry missing value")?;
                if as_counter {
                    counters.push((name, value as u64));
                } else {
                    gauges.push((name, value));
                }
            }
        }
        Ok(Self {
            experiment,
            histograms,
            counters,
            gauges,
        })
    }

    /// Write to `results/METRICS_<experiment>.json`, announce the
    /// path, and return it.
    pub fn write_results(&self) -> std::io::Result<PathBuf> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("METRICS_{}.json", self.experiment));
        std::fs::write(&path, self.to_json())?;
        println!("[metrics saved to {}]", path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        // Every representative value lands in a bucket whose bounds
        // contain it, and bucket bounds tile the line without gaps.
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 123_456_789, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
        }
        for i in 0..N_BUCKETS - 1 {
            assert_eq!(bucket_bounds(i).1 + 1, bucket_bounds(i + 1).0);
        }
        assert_eq!(bucket_bounds(N_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for i in (SUB_BUCKETS as usize)..N_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let width = (hi - lo) as f64;
            assert!(width / lo as f64 <= 1.0 / SUB_BUCKETS as f64 + 1e-9);
        }
    }

    #[test]
    fn quantiles_are_within_one_bucket_of_exact() {
        let h = Histogram::new();
        let mut exact: Vec<u64> = (0..1000).map(|i| (i * i) % 50_000 + 1).collect();
        for &v in &exact {
            h.record(v);
        }
        exact.sort_unstable();
        for (q, name) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999")] {
            let est = h.quantile(q);
            let rank = ((q * 1000.0).ceil() as usize).clamp(1, 1000) - 1;
            let truth = exact[rank];
            // Upper bucket bound: est >= truth, within 12.5% + 1.
            assert!(est >= truth, "{name}: est {est} < truth {truth}");
            assert!(
                est as f64 <= truth as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0,
                "{name}: est {est} too far above {truth}"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_and_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [10u64, 20, 30, 40, 1_000_000] {
            h.record(v);
        }
        let (p50, p90, p99, p999) = (
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.quantile(0.999),
        );
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=100u64 {
            a.record(v);
            b.record(v * 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.sum(), 5050 + 5050 * 1000);
        let s = a.summarize("m");
        assert_eq!(s.buckets.iter().map(|b| b.2).sum::<u64>(), 200);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        let s = h.summarize("c");
        assert_eq!(s.buckets.iter().map(|b| b.2).sum::<u64>(), 8000);
    }

    #[test]
    fn registry_snapshot_json_round_trips() {
        let r = MetricsRegistry::new();
        let h = r.histogram("serve.request.latency_ns");
        for v in [5u64, 17, 910, 15_000] {
            h.record(v);
        }
        assert!(std::sync::Arc::ptr_eq(
            &h,
            &r.histogram("serve.request.latency_ns")
        ));
        r.counter("serve.cache.hit").add(3);
        r.set_gauge("serve.cache.entries", 2.0);
        r.set_gauge("serve.cache.entries", 1.0); // set semantics
        let snap = r.snapshot("unit");
        assert_eq!(snap.gauges, vec![("serve.cache.entries".to_string(), 1.0)]);
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        let h = back.histogram("serve.request.latency_ns").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets.iter().map(|b| b.2).sum::<u64>(), 4);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = MetricsRegistry::new();
        let h = r.histogram("serve.request.latency_ns");
        h.record(100);
        h.record(200);
        r.counter("serve.cache.hit").add(7);
        r.set_gauge("serve.cache.bytes", 1024.0);
        let text = r.snapshot("unit").to_prometheus();
        assert!(text.contains("# TYPE serve_request_latency_ns histogram"));
        assert!(text.contains("serve_request_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("serve_request_latency_ns_count 2"));
        assert!(text.contains("serve_cache_hit 7"));
        assert!(text.contains("serve_cache_bytes 1024"));
        // Cumulative le counts end at the total.
        let last_le = text
            .lines()
            .rfind(|l| l.contains("_bucket{le=") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_le.ends_with(" 2"));
    }
}
