//! `sympiler-obs`: the observability layer of the sympiler-rs workspace.
//!
//! The paper's argument (Figures 8/9, §4.3) is about *where time goes*
//! once symbolic analysis is decoupled from the numeric phase. This
//! crate provides the measurement substrate that makes the numeric
//! phase inspectable across all three execution tiers:
//!
//! - [`Profiler`] — hierarchical wall-clock spans on per-thread lanes,
//!   named atomic counters, and named gauges. A disabled profiler
//!   (the default) reduces every call to a branch on an `Option`, so
//!   instrumented hot loops pay nothing measurable and — because the
//!   instrumentation is purely observational — factorization results
//!   stay bitwise identical whether profiling is on or off.
//! - [`LuHealth`] — numerical-health monitors (pivot growth, min/max
//!   pivot magnitude, matched-diagonal quality) recorded during
//!   `factor()` so regimes like the growth-1e8 transversal pivoting
//!   case are measurable instead of anecdotal.
//! - [`Profile`] / [`TraceFile`] — snapshots and exporters: an aligned
//!   text table for humans and a chrome-`trace_event`-compatible JSON
//!   profile (`results/PROFILE_<experiment>.json`) with a matching
//!   subset parser so tests and the perf gate can read profiles back.
//! - [`MetricsRegistry`] / [`Histogram`] — serving metrics: log-
//!   bucketed latency histograms (lock-free record path, mergeable
//!   across worker threads) with Prometheus text exposition and a
//!   JSON snapshot writer (`results/METRICS_<experiment>.json`).
//! - [`EventJournal`] — a structured incident journal (worker panics,
//!   cache evictions, recovery escalations) exported as JSONL with
//!   monotonic sequence numbers.
//! - [`json`] — the no-serde JSON writer/parser shared with the perf
//!   reports in `sympiler-bench`.
//!
//! The crate is dependency-free (std only) and sits below every other
//! workspace crate so the core pipeline can thread one profiler from
//! compile time through the numeric phase.

pub mod journal;
pub mod json;
pub mod metrics;
mod trace;

pub use journal::{Event, EventJournal};
pub use metrics::{Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use trace::{Profile, TraceFile};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Maximum number of span lanes. Lane 0 is the main/compile/serial
/// lane; parallel tiers use lane `t` for worker `t`. Lanes at or above
/// the cap are clamped to the last lane (threads beyond 31 share it).
pub const MAX_LANES: usize = 32;

/// One recorded span: a named wall-clock interval on a lane, with a
/// nesting depth and optional numeric arguments (panel width, flops,
/// achieved GFLOP/s, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    pub name: String,
    /// Lane (thread) the span was recorded on.
    pub lane: usize,
    /// Nesting depth below other open spans on the same lane.
    pub depth: usize,
    /// Start, in nanoseconds since the profiler's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric key/value annotations.
    pub args: Vec<(String, f64)>,
}

#[derive(Default)]
struct Lane {
    spans: Vec<SpanRec>,
    /// Indices into `spans` of the currently-open spans (innermost last).
    open: Vec<usize>,
}

type CounterTable = Vec<(String, Arc<AtomicU64>)>;

struct Inner {
    epoch: Instant,
    lanes: Vec<Mutex<Lane>>,
    counters: Mutex<CounterTable>,
    gauges: Mutex<Vec<(String, f64)>>,
    /// Lane → display name (chrome `thread_name` metadata); at most
    /// one entry per lane, last write wins.
    lane_names: Mutex<Vec<(usize, String)>>,
    /// Incident journal sharing the profiler's epoch.
    journal: EventJournal,
}

/// The journal handed out by a disabled profiler: inert, shared.
static INERT_JOURNAL: EventJournal = EventJournal::disabled();

/// Handle to an open span, returned by [`Profiler::begin`]. `None` when
/// the profiler is disabled — [`Profiler::end`] accepts the `Option`
/// directly so call sites stay branch-free.
#[derive(Debug)]
pub struct SpanId {
    lane: usize,
    idx: usize,
}

/// A cheap cloneable handle to a named atomic counter. A handle from a
/// disabled profiler is inert: `add` is a no-op and `get` returns 0.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add to the counter (relaxed; safe from any thread).
    #[inline]
    pub fn add(&self, v: u64) {
        if let Some(a) = &self.0 {
            a.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for inert handles).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.load(Ordering::Relaxed))
    }

    /// Wrap a shared atomic (used by [`MetricsRegistry`] so its
    /// counters hand out the same lock-free handle type).
    pub(crate) fn from_shared(a: Arc<AtomicU64>) -> Self {
        Counter(Some(a))
    }
}

/// Span/counter/gauge recorder threaded through the LU pipeline.
///
/// A `Profiler` is either *enabled* (records everything, timestamps
/// relative to its creation instant) or *disabled* (every method is a
/// near-free no-op). Plans hold it behind an `Arc`, so a plan clone —
/// and every execution tier built from that plan — records into the
/// same trace.
pub struct Profiler {
    inner: Option<Inner>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Profiler {
    /// A no-op profiler: every method is a branch and nothing more.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording profiler with its epoch at the call instant.
    pub fn enabled() -> Self {
        let epoch = Instant::now();
        Self {
            inner: Some(Inner {
                epoch,
                lanes: (0..MAX_LANES)
                    .map(|_| Mutex::new(Lane::default()))
                    .collect(),
                counters: Mutex::new(Vec::new()),
                gauges: Mutex::new(Vec::new()),
                lane_names: Mutex::new(Vec::new()),
                journal: EventJournal::with_epoch(epoch),
            }),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the profiler's epoch (0 when disabled).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_nanos() as u64)
    }

    /// Open a span on `lane`. Returns `None` when disabled.
    pub fn begin(&self, lane: usize, name: &str) -> Option<SpanId> {
        let start = self.now_ns();
        self.begin_at(lane, name, start)
    }

    /// Open a span with an explicit start timestamp (from
    /// [`now_ns`](Self::now_ns)) — the pattern used by the serving
    /// layer to backdate a request's root span to its *submit* time so
    /// the queue-wait child nests inside it.
    pub fn begin_at(&self, lane: usize, name: &str, start: u64) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let lane = lane.min(MAX_LANES - 1);
        let mut l = inner.lanes[lane].lock().unwrap();
        let depth = l.open.len();
        let idx = l.spans.len();
        l.spans.push(SpanRec {
            name: name.to_string(),
            lane,
            depth,
            start_ns: start,
            dur_ns: 0,
            args: Vec::new(),
        });
        l.open.push(idx);
        Some(SpanId { lane, idx })
    }

    /// Close a span opened by [`begin`](Self::begin).
    pub fn end(&self, id: Option<SpanId>) {
        self.end_with(id, &[]);
    }

    /// Close a span, attaching numeric arguments.
    pub fn end_with(&self, id: Option<SpanId>, args: &[(&str, f64)]) {
        let (Some(inner), Some(id)) = (self.inner.as_ref(), id) else {
            return;
        };
        let now = inner.epoch.elapsed().as_nanos() as u64;
        let mut l = inner.lanes[id.lane].lock().unwrap();
        if let Some(pos) = l.open.iter().rposition(|&i| i == id.idx) {
            l.open.remove(pos);
        }
        let s = &mut l.spans[id.idx];
        s.dur_ns = now.saturating_sub(s.start_ns);
        s.args = args.iter().map(|&(k, v)| (k.to_string(), v)).collect();
    }

    /// Record a span after the fact from timestamps obtained via
    /// [`now_ns`](Self::now_ns) — the pattern used by parallel workers
    /// that accumulate interval boundaries locally and emit once.
    pub fn add_span(
        &self,
        lane: usize,
        name: &str,
        start_ns: u64,
        dur_ns: u64,
        args: &[(&str, f64)],
    ) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let lane = lane.min(MAX_LANES - 1);
        let mut l = inner.lanes[lane].lock().unwrap();
        let depth = l.open.len();
        l.spans.push(SpanRec {
            name: name.to_string(),
            lane,
            depth,
            start_ns,
            dur_ns,
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Get (creating on first use) the named counter. Hot loops should
    /// hoist the handle — or better, accumulate locally and `add` once.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = self.inner.as_ref() else {
            return Counter(None);
        };
        let mut c = inner.counters.lock().unwrap();
        if let Some((_, a)) = c.iter().find(|(n, _)| n == name) {
            return Counter(Some(a.clone()));
        }
        let a = Arc::new(AtomicU64::new(0));
        c.push((name.to_string(), a.clone()));
        Counter(Some(a))
    }

    /// Current value of a counter (0 if absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        let Some(inner) = self.inner.as_ref() else {
            return 0;
        };
        let c = inner.counters.lock().unwrap();
        c.iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, a)| a.load(Ordering::Relaxed))
    }

    /// Record a named gauge value. Gauges append (they are not unique
    /// by name); [`Profile::gauge`] returns the first recorded value.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = self.inner.as_ref() {
            inner.gauges.lock().unwrap().push((name.to_string(), value));
        }
    }

    /// Set a *live* gauge: replaces the previous value of the same
    /// name (or appends on first write). Used for occupancy-style
    /// gauges (`serve.cache.entries`, `serve.cache.bytes`) where only
    /// the current value is meaningful.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut g = inner.gauges.lock().unwrap();
        match g.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = value,
            None => g.push((name.to_string(), value)),
        }
    }

    /// Name a lane for trace display (chrome `thread_name` metadata).
    /// Idempotent per lane: re-naming (a respawned worker re-claiming
    /// its slot) replaces the previous name, keeping tids stable.
    pub fn name_lane(&self, lane: usize, name: &str) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let lane = lane.min(MAX_LANES - 1);
        let mut names = inner.lane_names.lock().unwrap();
        match names.iter_mut().find(|(l, _)| *l == lane) {
            Some(slot) => slot.1 = name.to_string(),
            None => names.push((lane, name.to_string())),
        }
    }

    /// The profiler's incident journal (inert when disabled). Journal
    /// timestamps share the profiler's epoch, so events line up with
    /// spans in the same trace.
    pub fn journal(&self) -> &EventJournal {
        match &self.inner {
            Some(i) => &i.journal,
            None => &INERT_JOURNAL,
        }
    }

    /// Snapshot everything recorded so far into a [`Profile`].
    /// Spans are ordered lane-major, each lane chronologically.
    pub fn snapshot(&self, label: &str) -> Profile {
        let Some(inner) = self.inner.as_ref() else {
            return Profile {
                label: label.to_string(),
                ..Profile::default()
            };
        };
        let mut spans = Vec::new();
        for lane in &inner.lanes {
            spans.extend(lane.lock().unwrap().spans.iter().cloned());
        }
        let counters = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, a)| (n.clone(), a.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner.gauges.lock().unwrap().clone();
        let mut thread_names = inner.lane_names.lock().unwrap().clone();
        thread_names.sort_by_key(|&(lane, _)| lane);
        Profile {
            label: label.to_string(),
            spans,
            counters,
            gauges,
            thread_names,
        }
    }

    /// Clear all spans and gauges and zero all counters (existing
    /// [`Counter`] handles stay valid and keep accumulating).
    pub fn reset(&self) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        for lane in &inner.lanes {
            let mut l = lane.lock().unwrap();
            l.spans.clear();
            l.open.clear();
        }
        for (_, a) in inner.counters.lock().unwrap().iter() {
            a.store(0, Ordering::Relaxed);
        }
        inner.gauges.lock().unwrap().clear();
        inner.lane_names.lock().unwrap().clear();
    }
}

/// Numerical-health monitors computed from a completed LU
/// factorization. All magnitudes are absolute values.
///
/// `growth` is the element-growth factor `max|U| / max|A|` — the
/// quantity that explodes (≈1e8 on the saddle-point problem) when
/// static transversal pivoting picks structurally-valid but tiny
/// pivots, and that weighted matching keeps near 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LuHealth {
    /// Largest magnitude in the input matrix A.
    pub max_abs_a: f64,
    /// Largest magnitude in the U factor.
    pub max_abs_u: f64,
    /// Element growth factor `max|U| / max|A|` (0 for an empty A).
    pub growth: f64,
    /// Smallest pivot magnitude on the U diagonal.
    pub min_pivot: f64,
    /// Largest pivot magnitude on the U diagonal.
    pub max_pivot: f64,
    /// Smallest magnitude of `A[rperm[j], cperm[j]]` — the quality of
    /// the statically matched diagonal (0 when an entry is missing).
    pub min_matched_diag: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.now_ns(), 0);
        let id = p.begin(0, "x");
        assert!(id.is_none());
        p.end(id);
        p.add_span(0, "y", 0, 10, &[]);
        let c = p.counter("n");
        c.add(5);
        assert_eq!(c.get(), 0);
        assert_eq!(p.counter_value("n"), 0);
        p.gauge("g", 1.0);
        let s = p.snapshot("empty");
        assert!(s.spans.is_empty() && s.counters.is_empty() && s.gauges.is_empty());
    }

    #[test]
    fn spans_nest_and_record_args() {
        let p = Profiler::enabled();
        let outer = p.begin(0, "outer");
        let inner = p.begin(0, "inner");
        p.end_with(inner, &[("flops", 64.0)]);
        p.end(outer);
        let s = p.snapshot("t");
        assert_eq!(s.spans.len(), 2);
        let outer = s.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = s.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.args, vec![("flops".to_string(), 64.0)]);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn counters_accumulate_across_handles_and_threads() {
        let p = Profiler::enabled();
        let c1 = p.counter("flops.scalar");
        let c2 = p.counter("flops.scalar");
        c1.add(10);
        c2.add(32);
        assert_eq!(p.counter_value("flops.scalar"), 42);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = p.counter("flops.scalar");
                s.spawn(move || c.add(100));
            }
        });
        assert_eq!(p.counter_value("flops.scalar"), 442);
    }

    #[test]
    fn lanes_are_independent_and_clamped() {
        let p = Profiler::enabled();
        p.add_span(1, "w", 0, 5, &[]);
        p.add_span(MAX_LANES + 7, "clamped", 0, 5, &[]);
        let s = p.snapshot("t");
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].lane, 1);
        assert_eq!(s.spans[1].lane, MAX_LANES - 1);
    }

    #[test]
    fn set_gauge_replaces_while_gauge_appends() {
        let p = Profiler::enabled();
        p.gauge("health.growth", 1.0);
        p.gauge("health.growth", 2.0);
        p.set_gauge("serve.cache.entries", 5.0);
        p.set_gauge("serve.cache.entries", 3.0);
        let s = p.snapshot("t");
        // Append-only gauges keep both records, first-wins on read.
        assert_eq!(
            s.gauges
                .iter()
                .filter(|(n, _)| n == "health.growth")
                .count(),
            2
        );
        assert_eq!(s.gauge("health.growth"), Some(1.0));
        // Live gauges hold only the current value.
        assert_eq!(
            s.gauges
                .iter()
                .filter(|(n, _)| n == "serve.cache.entries")
                .count(),
            1
        );
        assert_eq!(s.gauge("serve.cache.entries"), Some(3.0));
    }

    #[test]
    fn lane_names_are_stable_across_renames() {
        let p = Profiler::enabled();
        p.name_lane(1, "worker-0");
        p.name_lane(2, "worker-1");
        p.name_lane(1, "worker-0"); // respawned worker re-claims its lane
        p.name_lane(MAX_LANES + 5, "clamped");
        let s = p.snapshot("t");
        assert_eq!(
            s.thread_names,
            vec![
                (1, "worker-0".to_string()),
                (2, "worker-1".to_string()),
                (MAX_LANES - 1, "clamped".to_string()),
            ]
        );
        let disabled = Profiler::disabled();
        disabled.name_lane(1, "x");
        assert!(disabled.snapshot("t").thread_names.is_empty());
    }

    #[test]
    fn begin_at_backdates_the_root_span() {
        let p = Profiler::enabled();
        let submit = p.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let root = p.begin_at(1, "request", submit);
        let child = p.begin(1, "factor");
        p.end(child);
        p.end_with(root, &[("req", 7.0)]);
        let s = p.snapshot("t");
        let root = s.spans_named("request").next().unwrap();
        let child = s.spans_named("factor").next().unwrap();
        assert_eq!(root.start_ns, submit);
        assert_eq!(root.depth, 0);
        assert_eq!(child.depth, 1);
        assert!(child.start_ns >= root.start_ns);
        assert!(root.start_ns + root.dur_ns >= child.start_ns + child.dur_ns);
        assert_eq!(root.args, vec![("req".to_string(), 7.0)]);
    }

    #[test]
    fn journal_is_inert_when_disabled_and_shares_epoch_when_enabled() {
        let d = Profiler::disabled();
        d.journal().emit("x", &[], &[]);
        assert!(d.journal().is_empty());

        let p = Profiler::enabled();
        let before = p.now_ns();
        p.journal().emit("cache.eviction", &[("bytes", 10.0)], &[]);
        let after = p.now_ns();
        let ev = p.journal().events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].seq, 0);
        assert!(ev[0].t_ns >= before && ev[0].t_ns <= after);
    }

    #[test]
    fn reset_clears_state_but_keeps_counter_handles() {
        let p = Profiler::enabled();
        let c = p.counter("n");
        c.add(7);
        let id = p.begin(0, "x");
        p.end(id);
        p.gauge("g", 2.0);
        p.reset();
        let s = p.snapshot("t");
        assert!(s.spans.is_empty() && s.gauges.is_empty());
        assert_eq!(p.counter_value("n"), 0);
        c.add(3);
        assert_eq!(p.counter_value("n"), 3);
    }
}
