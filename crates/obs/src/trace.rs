//! Profile snapshots and exporters: an aligned text table for humans
//! and a chrome-`trace_event`-compatible JSON file for machines, plus
//! the matching subset parser so tests and the perf gate can read
//! profiles back.
//!
//! ## Profile schema
//!
//! `results/PROFILE_<experiment>.json` is a chrome trace-event JSON
//! object (loadable in `chrome://tracing` / Perfetto) with two extra
//! top-level arrays that chrome ignores:
//!
//! ```json
//! {
//!   "experiment": "lu_compare",
//!   "displayTimeUnit": "ms",
//!   "traceEvents": [
//!     {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
//!      "args": {"name": "<profile label>"}},
//!     {"name": "thread_name", "ph": "M", "pid": 1, "tid": <lane>,
//!      "args": {"name": "worker-0"}},
//!     {"name": "<span>", "ph": "X", "pid": 1, "tid": <lane>,
//!      "ts": <µs>, "dur": <µs>, "args": {"depth": 0, "flops": 64}}
//!   ],
//!   "counters": [{"pid": 1, "name": "flops.scalar", "value": 123}],
//!   "gauges":   [{"pid": 1, "name": "health.growth", "value": 1.5}]
//! }
//! ```
//!
//! Each [`Profile`] becomes one chrome "process" (`pid` = index + 1,
//! named by a metadata event); lanes map to `tid`. Timestamps are
//! microseconds with nanosecond resolution (three decimals), so the
//! write → parse round trip reproduces span times exactly.

use crate::json::{self, escape, number, Value};
use crate::SpanRec;
use std::path::{Path, PathBuf};

/// One profiler snapshot: everything recorded for one labelled run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Label shown as the chrome process name (problem name, ...).
    pub label: String,
    /// Spans, lane-major, each lane chronological.
    pub spans: Vec<SpanRec>,
    /// Counter name → final value, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, in record order (names may repeat).
    pub gauges: Vec<(String, f64)>,
    /// Lane → display name, ascending by lane (chrome `thread_name`
    /// metadata: `worker-0`, `worker-1`, ... for service lanes).
    pub thread_names: Vec<(usize, String)>,
}

impl Profile {
    /// Final value of a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// First recorded value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// All spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRec> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Display name of a lane, if one was recorded.
    pub fn thread_name(&self, lane: usize) -> Option<&str> {
        self.thread_names
            .iter()
            .find(|&&(l, _)| l == lane)
            .map(|(_, n)| n.as_str())
    }

    /// Distinct lanes that carry at least one span, ascending.
    pub fn lanes_used(&self) -> Vec<usize> {
        let mut lanes: Vec<usize> = self.spans.iter().map(|s| s.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        lanes
    }
}

/// A set of profiles from one experiment, ready for export.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceFile {
    /// Experiment name (`lu_compare`, ...); names the output file.
    pub experiment: String,
    pub profiles: Vec<Profile>,
}

impl TraceFile {
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            profiles: Vec::new(),
        }
    }

    /// Append one profile (one chrome process).
    pub fn push(&mut self, profile: Profile) {
        self.profiles.push(profile);
    }

    /// Look up a profile by label.
    pub fn profile(&self, label: &str) -> Option<&Profile> {
        self.profiles.iter().find(|p| p.label == label)
    }

    /// Serialize to chrome trace-event JSON (see the module docs for
    /// the schema).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            escape(&self.experiment)
        ));
        out.push_str("  \"displayTimeUnit\": \"ms\",\n");
        out.push_str("  \"traceEvents\": [\n");
        let mut events: Vec<String> = Vec::new();
        for (i, p) in self.profiles.iter().enumerate() {
            let pid = i + 1;
            events.push(format!(
                "    {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \
                 \"tid\": 0, \"args\": {{\"name\": \"{}\"}}}}",
                escape(&p.label)
            ));
            for (lane, name) in &p.thread_names {
                events.push(format!(
                    "    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \
                     \"tid\": {lane}, \"args\": {{\"name\": \"{}\"}}}}",
                    escape(name)
                ));
            }
            for s in &p.spans {
                let mut args = format!("\"depth\": {}", s.depth);
                for (k, v) in &s.args {
                    args.push_str(&format!(", \"{}\": {}", escape(k), number(*v)));
                }
                events.push(format!(
                    "    {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": {pid}, \"tid\": {}, \
                     \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{{args}}}}}",
                    escape(&s.name),
                    s.lane,
                    s.start_ns as f64 / 1000.0,
                    s.dur_ns as f64 / 1000.0,
                ));
            }
        }
        out.push_str(&events.join(",\n"));
        out.push_str("\n  ],\n");
        let mut counters: Vec<String> = Vec::new();
        let mut gauges: Vec<String> = Vec::new();
        for (i, p) in self.profiles.iter().enumerate() {
            let pid = i + 1;
            for (name, v) in &p.counters {
                counters.push(format!(
                    "    {{\"pid\": {pid}, \"name\": \"{}\", \"value\": {v}}}",
                    escape(name)
                ));
            }
            for (name, v) in &p.gauges {
                gauges.push(format!(
                    "    {{\"pid\": {pid}, \"name\": \"{}\", \"value\": {}}}",
                    escape(name),
                    number(*v)
                ));
            }
        }
        out.push_str("  \"counters\": [\n");
        out.push_str(&counters.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str("  \"gauges\": [\n");
        out.push_str(&gauges.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a trace written by [`to_chrome_json`](Self::to_chrome_json)
    /// (tolerates any JSON with the same shape).
    pub fn from_chrome_json(s: &str) -> Result<Self, String> {
        let v = json::parse(s)?;
        let experiment = v
            .get("experiment")
            .and_then(Value::as_str)
            .ok_or("missing \"experiment\" string")?
            .to_string();
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or("missing \"traceEvents\" array")?;
        // pid → profile, in order of first appearance.
        let mut pids: Vec<usize> = Vec::new();
        let mut profiles: Vec<Profile> = Vec::new();
        let profile_of = |pid: usize, pids: &mut Vec<usize>, profiles: &mut Vec<Profile>| match pids
            .iter()
            .position(|&p| p == pid)
        {
            Some(i) => i,
            None => {
                pids.push(pid);
                profiles.push(Profile::default());
                profiles.len() - 1
            }
        };
        for e in events {
            let name = e
                .get("name")
                .and_then(Value::as_str)
                .ok_or("event missing name")?;
            let ph = e
                .get("ph")
                .and_then(Value::as_str)
                .ok_or("event missing ph")?;
            let pid = e
                .get("pid")
                .and_then(Value::as_f64)
                .ok_or("event missing pid")? as usize;
            let i = profile_of(pid, &mut pids, &mut profiles);
            match ph {
                "M" if name == "thread_name" => {
                    let lane = e.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as usize;
                    if let Some(n) = e
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                    {
                        profiles[i].thread_names.push((lane, n.to_string()));
                    }
                }
                "M" if name == "process_name" => {
                    if let Some(label) = e
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                    {
                        profiles[i].label = label.to_string();
                    }
                }
                "X" => {
                    let lane = e.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as usize;
                    let ts = e
                        .get("ts")
                        .and_then(Value::as_f64)
                        .ok_or("event missing ts")?;
                    let dur = e
                        .get("dur")
                        .and_then(Value::as_f64)
                        .ok_or("event missing dur")?;
                    let mut depth = 0usize;
                    let mut args = Vec::new();
                    if let Some(a) = e.get("args") {
                        for (k, v) in a.fields() {
                            let Some(v) = v.as_f64() else { continue };
                            if k == "depth" {
                                depth = v as usize;
                            } else {
                                args.push((k.clone(), v));
                            }
                        }
                    }
                    profiles[i].spans.push(SpanRec {
                        name: name.to_string(),
                        lane,
                        depth,
                        start_ns: (ts * 1000.0).round() as u64,
                        dur_ns: (dur * 1000.0).round() as u64,
                        args,
                    });
                }
                _ => {} // other phases are legal chrome events; skip
            }
        }
        for (kind, target) in [("counters", true), ("gauges", false)] {
            let Some(items) = v.get(kind).and_then(Value::as_array) else {
                continue;
            };
            for item in items {
                let pid = item
                    .get("pid")
                    .and_then(Value::as_f64)
                    .ok_or("entry missing pid")? as usize;
                let name = item
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("entry missing name")?
                    .to_string();
                let value = item
                    .get("value")
                    .and_then(Value::as_f64)
                    .ok_or("entry missing value")?;
                let i = profile_of(pid, &mut pids, &mut profiles);
                if target {
                    profiles[i].counters.push((name, value as u64));
                } else {
                    profiles[i].gauges.push((name, value));
                }
            }
        }
        Ok(Self {
            experiment,
            profiles,
        })
    }

    /// Render an aligned text summary: per profile, spans aggregated
    /// by (name, lane) with count/total/mean, then counters and gauges.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("profile: {}\n", self.experiment));
        for p in &self.profiles {
            out.push_str(&format!("== {} ==\n", p.label));
            // Aggregate spans by (name, lane), preserving first-seen order.
            let mut agg: Vec<(String, usize, usize, u64)> = Vec::new();
            for s in &p.spans {
                match agg
                    .iter_mut()
                    .find(|(n, l, _, _)| *n == s.name && *l == s.lane)
                {
                    Some(row) => {
                        row.2 += 1;
                        row.3 += s.dur_ns;
                    }
                    None => agg.push((s.name.clone(), s.lane, 1, s.dur_ns)),
                }
            }
            if !agg.is_empty() {
                out.push_str(&format!(
                    "  {:<34} {:>4} {:>7} {:>12} {:>12}\n",
                    "span", "lane", "count", "total(ms)", "mean(us)"
                ));
                for (name, lane, count, total_ns) in &agg {
                    out.push_str(&format!(
                        "  {:<34} {:>4} {:>7} {:>12.3} {:>12.3}\n",
                        name,
                        lane,
                        count,
                        *total_ns as f64 / 1e6,
                        *total_ns as f64 / 1e3 / *count as f64
                    ));
                }
            }
            for (name, v) in &p.counters {
                out.push_str(&format!("  counter {name:<32} {v}\n"));
            }
            for (name, v) in &p.gauges {
                out.push_str(&format!("  gauge   {name:<32} {v:.6e}\n"));
            }
        }
        out
    }

    /// Write the trace to `results/PROFILE_<experiment>.json` (creating
    /// `results/` if needed), announce the path, and return it.
    pub fn write_results(&self) -> std::io::Result<PathBuf> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("PROFILE_{}.json", self.experiment));
        std::fs::write(&path, self.to_chrome_json())?;
        println!("[profile saved to {}]", path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceFile {
        let mut t = TraceFile::new("lu_compare");
        t.push(Profile {
            label: "convdiff \"mild\"\n".to_string(),
            spans: vec![
                SpanRec {
                    name: "factor:serial".to_string(),
                    lane: 0,
                    depth: 0,
                    start_ns: 1_234_567,
                    dur_ns: 89_012,
                    args: vec![("flops".to_string(), 4096.0)],
                },
                SpanRec {
                    name: "work\\seg".to_string(),
                    lane: 3,
                    depth: 1,
                    start_ns: 5,
                    dur_ns: 7,
                    args: vec![],
                },
            ],
            counters: vec![("flops.scalar".to_string(), 4096)],
            gauges: vec![("health.growth".to_string(), 1.25)],
            thread_names: vec![(0, "main".to_string()), (3, "worker-2".to_string())],
        });
        t.push(Profile {
            label: "p2".to_string(),
            spans: vec![],
            counters: vec![],
            gauges: vec![("par.imbalance".to_string(), 1.5)],
            thread_names: vec![],
        });
        t
    }

    #[test]
    fn chrome_json_round_trips() {
        let t = sample();
        let s = t.to_chrome_json();
        let back = TraceFile::from_chrome_json(&s).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn chrome_json_is_parseable_by_the_shared_parser() {
        let s = sample().to_chrome_json();
        let v = json::parse(&s).unwrap();
        assert!(v.get("traceEvents").and_then(Value::as_array).is_some());
        assert_eq!(v.get("displayTimeUnit").and_then(Value::as_str), Some("ms"));
    }

    #[test]
    fn profile_lookups() {
        let t = sample();
        let p = t.profile("convdiff \"mild\"\n").unwrap();
        assert_eq!(p.counter("flops.scalar"), Some(4096));
        assert_eq!(p.gauge("health.growth"), Some(1.25));
        assert_eq!(p.spans_named("factor:serial").count(), 1);
        assert_eq!(p.lanes_used(), vec![0, 3]);
        assert_eq!(p.thread_name(3), Some("worker-2"));
        assert_eq!(p.thread_name(7), None);
    }

    #[test]
    fn table_renders() {
        let text = sample().to_table();
        assert!(text.contains("factor:serial"));
        assert!(text.contains("counter flops.scalar"));
        assert!(text.contains("gauge   health.growth"));
    }

    #[test]
    fn parser_skips_foreign_event_phases() {
        let s = "{\"experiment\":\"x\",\"traceEvents\":[\
                 {\"name\":\"i\",\"ph\":\"i\",\"pid\":1,\"ts\":0},\
                 {\"name\":\"s\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":1.5,\"dur\":0.5}]}";
        let t = TraceFile::from_chrome_json(s).unwrap();
        assert_eq!(t.profiles.len(), 1);
        assert_eq!(t.profiles[0].spans.len(), 1);
        assert_eq!(t.profiles[0].spans[0].start_ns, 1500);
        assert_eq!(t.profiles[0].spans[0].dur_ns, 500);
    }
}
