//! A minimal JSON subset writer + parser shared by every machine-readable
//! artifact in the workspace (`results/BENCH_*.json` perf reports and
//! `results/PROFILE_*.json` chrome traces). No serde in this offline
//! workspace: the writer is `format!`-based with [`escape`] guarding
//! string content, and the parser below reads any JSON document built
//! from objects, arrays, strings, numbers, and `true`/`false`/`null`.
//!
//! Strings round-trip exactly: the writer escapes quotes, backslashes,
//! and every control character (`\n`/`\t`/`\r` named, the rest as
//! `\u00XX`), and the parser accepts all of those plus `\b`, `\f`,
//! `\/`, and full `\uXXXX` sequences including surrogate pairs.

/// Escape a string for embedding inside a JSON string literal.
///
/// Handles `"` and `\` plus all control characters, so arbitrary kernel
/// and span names (including embedded newlines or tabs) always produce
/// valid JSON. Shared by the perf-report writer and the profile writer.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number. Rust's shortest-round-trip `{}`
/// formatting is already valid JSON for finite values; non-finite
/// values (which JSON cannot represent) are clamped to `0`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// Object fields in document order (empty for non-objects).
    pub fn fields(&self) -> &[(String, Value)] {
        match self {
            Value::Object(fields) => fields,
            _ => &[],
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Value::String(string(b, pos)?)),
        Some(b't') => literal(b, pos, "true", Value::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Value::Null),
        Some(_) => number_token(b, pos),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        expect(b, pos, b':')?;
        fields.push((key, value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    if *pos + 4 > b.len() {
        return Err("truncated \\u escape".into());
    }
    let s = std::str::from_utf8(&b[*pos..*pos + 4]).map_err(|_| "bad \\u escape".to_string())?;
    let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
    *pos += 4;
    Ok(v)
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    // Accumulate raw bytes and validate UTF-8 once at the end, so
    // multi-byte sequences survive intact.
    let mut out: Vec<u8> = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into()),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0C),
                    b'u' => {
                        let cp = hex4(b, pos)?;
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: must be followed by a low
                            // surrogate escape.
                            if b.get(*pos) != Some(&b'\\') || b.get(*pos + 1) != Some(&b'u') {
                                return Err("unpaired high surrogate".into());
                            }
                            *pos += 2;
                            let lo = hex4(b, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined).ok_or("invalid surrogate pair")?
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err("unpaired low surrogate".into());
                        } else {
                            char::from_u32(cp).ok_or("invalid \\u codepoint")?
                        };
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unsupported escape '\\{}'", other as char)),
                }
            }
            _ => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn number_token(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_backslashes() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escape("x\u{1}y\u{1f}z"), "x\\u0001y\\u001fz");
    }

    #[test]
    fn escaped_strings_round_trip_through_parser() {
        let nasty = "ke\"rn\\el\nwith\tctrl\r\u{8}\u{c}\u{1}\u{1f} bytes café_μ";
        let doc = format!("{{\"name\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn parser_accepts_unicode_escapes_and_surrogate_pairs() {
        let v = parse("\"\\u00e9\\ud83d\\ude00\\b\\f\\r\"").unwrap();
        assert_eq!(v.as_str(), Some("é😀\u{8}\u{c}\r"));
        assert!(parse("\"\\ud83d\"").is_err()); // unpaired high surrogate
        assert!(parse("\"\\ude00\"").is_err()); // unpaired low surrogate
    }

    #[test]
    fn number_clamps_non_finite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::INFINITY), "0");
        assert_eq!(number(f64::NAN), "0");
    }

    #[test]
    fn parser_handles_nesting() {
        let v = parse("{\"a\": [1, -2.5, {\"b\\\"c\": true}, null, false], \"d\": \"e\\\\f\"}")
            .unwrap();
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].get("b\"c"), Some(&Value::Bool(true)));
        assert_eq!(arr[3], Value::Null);
        assert_eq!(v.get("d").and_then(Value::as_str), Some("e\\f"));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\": 1} tail").is_err());
        assert!(parse("{\"a\"").is_err());
    }
}
