//! # sympiler
//!
//! A Rust reproduction of **Sympiler** (Cheshmi, Kamil, Strout, Mehri
//! Dehnavi — *Sympiler: Transforming Sparse Matrix Codes by Decoupling
//! Symbolic Analysis*, SC 2017): a sparsity-aware code generator that
//! performs all symbolic analysis of a sparse kernel at compile time and
//! emits numeric-only code specialized to one sparsity pattern.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`sparse`] — CSC/COO storage, ops, Matrix Market I/O, generators;
//! * [`graph`] — reach-sets, elimination trees, fill patterns, supernodes;
//! * [`dense`] — the mini-BLAS used by supernodal kernels;
//! * [`core`] — the Sympiler itself: symbolic inspectors, VI-Prune and
//!   VS-Block transformations, low-level transformations, C emission and
//!   executable plans;
//! * [`obs`] — the observability layer: spans, kernel counters,
//!   numerical-health gauges, chrome-trace export
//!   ([`SympilerOptions::profile`] turns it on per compile);
//! * [`solvers`] — the Eigen-like and CHOLMOD-like baselines, plus the
//!   Gilbert–Peierls LU baseline for unsymmetric systems.
//!
//! Three kernels are compiled through the inspector→transform→plan
//! pipeline: sparse triangular solve ([`SympilerTriSolve`]), Cholesky
//! ([`SympilerCholesky`]), and sparse LU ([`SympilerLu`]) — the last
//! extending the paper's two kernels to unsymmetric systems (circuit
//! simulation, convection-dominated CFD) by reusing the reach-set
//! machinery: each left-looking LU column solve *is* a sparse
//! triangular solve, so its VI-Prune set is a reach set on the growing
//! `DG_L`. LU's numeric phase compiles to one of **three execution
//! tiers**: serial columns, columns leveled in parallel over the
//! column elimination DAG ([`SympilerOptions::n_threads`], bitwise
//! identical to serial at any thread count), or supernodal VS-Block
//! panels routed through dense GETRF/TRSM/GEMM kernels
//! ([`SympilerOptions::block_lu`], ~1e-12 agreement — dense kernels
//! reassociate sums). Two further compile-time knobs compose with
//! every tier: a fill-reducing ordering
//! ([`SympilerOptions::ordering`]: RCM / COLAMD, applied `Qᵀ A Q`)
//! and a static pre-pivot ([`SympilerOptions::pre_pivot`]: maximum
//! transversal / weighted matching, producing a row permutation `P`
//! with a zero-free diagonal on `P·A`) — the latter is what lets
//! statically pivoted LU factor saddle-point and circuit matrices
//! whose diagonals are structurally zero.
//!
//! When values drift into numerically hostile territory after the
//! pattern was compiled, the **recovery ladder**
//! ([`RobustLu`](prelude::RobustLu)) escalates from static pivot
//! perturbation ([`SympilerOptions::pivot_perturb`]) through
//! iterative refinement to a partial-pivoting re-factorization,
//! governed by a [`RecoveryPolicy`](prelude::RecoveryPolicy) — see
//! ARCHITECTURE.md §Robustness.
//!
//! [`SympilerOptions::pivot_perturb`]: prelude::SympilerOptions
//!
//! [`SympilerOptions::n_threads`]: prelude::SympilerOptions
//! [`SympilerOptions::block_lu`]: prelude::SympilerOptions
//! [`SympilerOptions::ordering`]: prelude::SympilerOptions
//! [`SympilerOptions::pre_pivot`]: prelude::SympilerOptions
//! [`SympilerOptions::profile`]: prelude::SympilerOptions
//!
//! [`SympilerTriSolve`]: prelude::SympilerTriSolve
//! [`SympilerCholesky`]: prelude::SympilerCholesky
//! [`SympilerLu`]: prelude::SympilerLu
//!
//! ## Quickstart
//!
//! ```
//! use sympiler::prelude::*;
//!
//! // An SPD matrix from a 2-D Laplacian (lower-triangle storage).
//! let a = sympiler::sparse::gen::grid2d_laplacian(8, 8, false, 42);
//!
//! // Compile a Cholesky factorization specialized to A's pattern.
//! let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).unwrap();
//! let factor = chol.factor(&a).unwrap();
//!
//! // Solve A x = b via L (L^T x) = b.
//! let b = vec![1.0; a.n_cols()];
//! let x = factor.solve(&b);
//! let resid = sympiler::sparse::ops::rel_residual_sym_lower(&a, &x, &b);
//! assert!(resid < 1e-10);
//! ```

pub use sympiler_core as core;
pub use sympiler_dense as dense;
pub use sympiler_graph as graph;
pub use sympiler_obs as obs;
pub use sympiler_solvers as solvers;
pub use sympiler_sparse as sparse;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use sympiler_core::compile::{
        BlockLu, Ordering, PrePivot, SympilerCholesky, SympilerLu, SympilerOptions,
        SympilerTriSolve,
    };
    pub use sympiler_core::plan::chol::CholFactor;
    pub use sympiler_core::plan::lu::{
        BatchError, LuFactor, LuPlan, LuWorkspace, PerturbReport, RefineReport,
    };
    #[cfg(feature = "parallel")]
    pub use sympiler_core::plan::lu_parallel::ParallelLuPlan;
    pub use sympiler_core::plan::lu_supernodal::SupernodalLuPlan;
    pub use sympiler_core::plan::tri::TriSolvePlan;
    pub use sympiler_core::robust::{Recovered, RecoveryError, RecoveryPolicy, RobustLu, Rung};
    pub use sympiler_core::serve::{
        CacheConfig, CacheStats, CachedPlan, FactorService, PlanCache, ServeError, ServeRequest,
        ServeResponse, Ticket,
    };
    pub use sympiler_obs::{
        Event, EventJournal, Histogram, HistogramSummary, LuHealth, MetricsRegistry,
        MetricsSnapshot, Profile, Profiler, TraceFile,
    };
    pub use sympiler_solvers::lu::{GpLu, GpLuFactors, Pivoting};
    pub use sympiler_sparse::{CscMatrix, SparseVec, TripletMatrix};
}
