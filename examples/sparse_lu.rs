//! Unsymmetric-system scenario for the sparse LU subsystem: a
//! convection–diffusion operator (CFD) and a circuit-style Jacobian
//! are factorized repeatedly with a fixed sparsity pattern while the
//! values change — the Sympiler premise applied to `A = L U`.
//!
//! `SympilerLu::compile` runs the Gilbert–Peierls symbolic analysis
//! once (per-column reach sets over the growing `DG_L`); each
//! `factor` call then executes the baked, numeric-only schedule. The
//! baseline `GpLu` re-runs its DFS inside every factorization, and its
//! partial-pivoting mode double-checks that static diagonal pivoting
//! is numerically safe on these diagonally dominant systems.
//!
//! Run with: `cargo run --release --example sparse_lu`

use std::time::Instant;
use sympiler::prelude::*;
use sympiler::sparse::{gen, ops};

fn scenario(name: &str, a0: &CscMatrix, rounds: usize) {
    let n = a0.n_cols();
    println!("\n== {name}: n={n}, nnz(A)={}", a0.nnz());

    // Compile once: all symbolic work happens here.
    let t0 = Instant::now();
    let lu = SympilerLu::compile(a0, &SympilerOptions::default()).expect("compile");
    let t_sym = t0.elapsed();
    println!(
        "symbolic (once): {t_sym:.2?} — nnz(L)={}, nnz(U)={}, {} scheduled updates",
        lu.plan().l_nnz(),
        lu.plan().u_nnz(),
        lu.plan().n_updates()
    );

    // Newton-style loop: same pattern, changing values.
    let mut a = a0.clone();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let (mut t_plan, mut t_base) = (std::time::Duration::ZERO, std::time::Duration::ZERO);
    for round in 0..rounds {
        for v in a.values_mut() {
            *v *= 1.0 + 0.01 / (round + 1) as f64;
        }
        let t = Instant::now();
        let f = lu.factor(&a).expect("plan factor");
        t_plan += t.elapsed();

        let t = Instant::now();
        let fb = GpLu::factor(&a, Pivoting::None).expect("baseline factor");
        t_base += t.elapsed();

        // The factors agree to 1e-10 and solve the system.
        for (x, y) in f.u().values().iter().zip(fb.u.values()) {
            assert!((x - y).abs() < 1e-10);
        }
        let x = f.solve(&b);
        let resid = ops::rel_residual(&a, &x, &b);
        assert!(resid < 1e-10, "round {round}: residual {resid}");
    }
    println!(
        "numeric x{rounds}: plan {t_plan:.2?} vs coupled baseline {t_base:.2?} \
         ({:.2}x); symbolic amortizes after {:.1} factorizations",
        t_base.as_secs_f64() / t_plan.as_secs_f64().max(1e-12),
        t_sym.as_secs_f64()
            / (t_base.as_secs_f64() / rounds as f64 - t_plan.as_secs_f64() / rounds as f64)
                .max(1e-12)
    );

    // Partial pivoting as the verification mode: same solution.
    let fp = GpLu::factor(&a, Pivoting::Partial).expect("partial factor");
    let x_static = lu.factor(&a).unwrap().solve(&b);
    let x_partial = fp.solve(&b);
    let max_diff = x_static
        .iter()
        .zip(&x_partial)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f64, f64::max);
    println!("static vs partial-pivoting solution: max |diff| = {max_diff:.3e}");
}

fn main() {
    scenario(
        "convection-diffusion 2-D (CFD)",
        &gen::convection_diffusion_2d(40, 40, 2.0, 7),
        20,
    );
    scenario(
        "unsymmetric circuit Jacobian",
        &gen::circuit_unsym(1200, 4, 3, 9),
        20,
    );
    println!("\nsparse_lu OK");
}
