//! Inspect the code-generation pipeline on the paper's own Figure 1
//! example: the 10x10 triangular system with b = {1, 6} (1-based).
//! Prints the inspection sets, the AST before/after VI-Prune, and the
//! specialized C that reproduces Figure 1e's structure (peeled columns
//! 0 and 7, reach-set loop for the rest).
//!
//! Run with: `cargo run --release --example codegen_inspect`

use sympiler::core::emit::{emit_kernel_c, emit_trisolve_c};
use sympiler::core::lower::lower_trisolve;
use sympiler::core::transform::{apply_vi_prune, apply_vs_block};
use sympiler::prelude::*;

/// The paper's Figure 1a matrix (see sympiler-graph's golden tests).
fn fig1_l() -> CscMatrix {
    let edges_1based: &[(usize, usize)] = &[
        (6, 1),
        (10, 1),
        (3, 2),
        (5, 2),
        (6, 3),
        (9, 3),
        (6, 4),
        (8, 4),
        (9, 4),
        (6, 5),
        (9, 5),
        (7, 6),
        (8, 7),
        (9, 8),
        (10, 8),
        (10, 9),
    ];
    let mut t = TripletMatrix::new(10, 10);
    for j in 0..10 {
        t.push(j, j, 2.0);
    }
    for &(i, j) in edges_1based {
        t.push(i - 1, j - 1, -0.1);
    }
    t.to_csc().unwrap()
}

fn main() {
    let l = fig1_l();
    let beta = [0usize, 5]; // b = {1, 6} 1-based

    println!("=== inspection ===");
    let reach = sympiler::graph::reach(&l, &beta);
    println!(
        "reach-set (topological): {:?}  (paper: {{1,6,7,8,9,10}} 1-based)",
        reach.iter().map(|j| j + 1).collect::<Vec<_>>()
    );

    println!("\n=== initial AST (Figure 2a) ===");
    let kernel = lower_trisolve();
    println!("{}", emit_kernel_c(&kernel));

    println!("=== after VI-Prune (Figure 2b) ===");
    let mut pruned = lower_trisolve();
    apply_vi_prune(&mut pruned, "pruneSet", "pruneSetSize");
    println!("{}", emit_kernel_c(&pruned));

    println!("=== after VS-Block ===");
    let mut blocked = lower_trisolve();
    apply_vs_block(&mut blocked, "dense_trsv", "dense_gemv");
    println!("{}", emit_kernel_c(&blocked));

    println!("=== specialized C for the Figure 1 matrix (Figure 1e) ===");
    let mut reach_sorted = reach.clone();
    reach_sorted.sort_unstable();
    let c = emit_trisolve_c(&l, &reach_sorted, 2);
    println!("{c}");

    // And the executable plan produces the right answer.
    let b = SparseVec::try_new(10, vec![0, 5], vec![1.0, 1.0]).unwrap();
    let mut ts = SympilerTriSolve::compile(&l, &beta, &SympilerOptions::default());
    let x = ts.solve(&b);
    println!("solution x = {x:?}");
    let nonzero: Vec<usize> = x
        .iter()
        .enumerate()
        .filter(|(_, v)| **v != 0.0)
        .map(|(i, _)| i + 1)
        .collect();
    println!("nonzero pattern of x (1-based): {nonzero:?}");
    assert_eq!(nonzero, vec![1, 6, 7, 8, 9, 10]);

    println!("\n=== specialized LU factorization C (third kernel) ===");
    let a = sympiler::sparse::gen::convection_diffusion_2d(4, 4, 1.2, 3);
    let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
    println!("{}", lu.emit_c());
    println!("codegen_inspect OK");
}
