//! Circuit / power-grid simulation scenario (paper §1.2): a
//! Newton-Raphson-style loop factorizes a Jacobian with a **fixed
//! sparsity pattern** at every iteration while its values change —
//! "a change in the sparsity structure occurs on rare occasions".
//!
//! Sympiler compiles once for the pattern and only the numeric
//! factorization runs per iteration; the baseline (Eigen-like
//! simplicial) redoes its coupled symbolic work every time.
//!
//! Run with: `cargo run --release --example circuit_simulation`

use std::time::Instant;
use sympiler::prelude::*;
use sympiler::solvers::SimplicialCholesky;
use sympiler::sparse::{gen, ops};

fn main() {
    // Circuit-like SPD Jacobian: sparse local graph + hub rails,
    // RCM-ordered once at netlist load (like a real simulator).
    let raw = gen::circuit_like_spanned(2000, 5, 4, 40, 11);
    let (a0, _perm) = sympiler::graph::rcm::rcm_permute(&raw);
    let n = a0.n_cols();
    let iterations = 20;
    println!(
        "circuit Jacobian: n={n}, nnz={} (lower), {iterations} NR iterations",
        a0.nnz()
    );

    // Compile once (symbolic), like a simulator would at netlist load.
    let t0 = Instant::now();
    let chol = SympilerCholesky::compile(&a0, &SympilerOptions::default()).expect("SPD");
    let compile_time = t0.elapsed();

    let eigen = SimplicialCholesky::analyze(&a0).expect("SPD");

    // Newton-Raphson loop: values drift each iteration, pattern fixed.
    let mut a = a0.clone();
    let mut x_prev = vec![0.0; n];
    let (mut t_symp, mut t_eigen) = (std::time::Duration::ZERO, std::time::Duration::ZERO);
    for it in 0..iterations {
        // Perturb values deterministically (keeps SPD: diagonal grows).
        let nnz = a.nnz();
        {
            let vals = a.values_mut();
            for (k, v) in vals.iter_mut().enumerate() {
                let bump = 1.0 + 0.01 * (((k + it * 7919) % 13) as f64) / 13.0;
                *v *= bump;
            }
            let _ = nnz;
        }

        // Sympiler numeric-only factorization + solve.
        let t = Instant::now();
        let f = chol.factor(&a).expect("factor");
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let x = f.solve(&b);
        t_symp += t.elapsed();

        // Baseline.
        let t = Instant::now();
        let xe = eigen.solve(&a, &b).expect("factor");
        t_eigen += t.elapsed();

        for (p, q) in x.iter().zip(&xe) {
            assert!((p - q).abs() < 1e-8 * (1.0 + p.abs()), "engines disagree");
        }
        let resid = ops::rel_residual_sym_lower(&a, &x, &b);
        assert!(resid < 1e-10);
        x_prev = x;
    }
    let _ = x_prev;
    println!("Sympiler compile (once):      {compile_time:?}");
    println!("Sympiler numeric x{iterations}:         {t_symp:?}");
    println!("Eigen-like numeric x{iterations}:       {t_eigen:?}");
    println!(
        "numeric speedup: {:.2}x; compile amortizes after ~{:.0} iterations",
        t_eigen.as_secs_f64() / t_symp.as_secs_f64(),
        compile_time.as_secs_f64()
            / ((t_eigen.as_secs_f64() - t_symp.as_secs_f64()).max(1e-12) / iterations as f64)
    );
}
