//! Circuit / power-grid simulation scenario (paper §1.2): a
//! Newton-Raphson-style loop factorizes an **unsymmetric** circuit
//! Jacobian at every iteration while its values change — "a change in
//! the sparsity structure occurs on rare occasions".
//!
//! Two implementations of the same transient run:
//!
//! * the **anti-pattern** — `SympilerLu::compile()` + `factor()` per
//!   iteration, paying the symbolic inspector every time;
//! * the **serving path** — every iteration submits a factor+solve
//!   request to a [`FactorService`] thread pool backed by a shared
//!   [`PlanCache`]; the pattern compiles once (the first request's
//!   miss) and every later iteration is a cache hit running
//!   numeric-only code against the `Arc`-shared plan.
//!
//! The two paths are verified **bitwise identical** per iteration —
//! serving changes where the work runs, never what it computes.
//!
//! Run with: `cargo run --release --example circuit_simulation`

use std::sync::Arc;
use std::time::{Duration, Instant};
use sympiler::prelude::*;
use sympiler::sparse::{gen, ops};

fn main() {
    // Unsymmetric circuit Jacobian: sparse local graph + hub rails,
    // row-sum dominant diagonal (statically pivoted LU is safe).
    let a0 = gen::circuit_unsym(1500, 4, 3, 11);
    let n = a0.n_cols();
    let iterations = 20;
    println!(
        "circuit Jacobian: n={n}, nnz={}, {iterations} NR iterations",
        a0.nnz()
    );

    let opts = SympilerOptions::default();
    let cache = Arc::new(PlanCache::new(CacheConfig::default()));
    let service = FactorService::new(2, Arc::clone(&cache));

    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let (mut t_naive, mut t_served) = (Duration::ZERO, Duration::ZERO);
    for it in 0..iterations {
        // Values drift deterministically each NR step, pattern fixed.
        let mut a = a0.clone();
        for (k, v) in a.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 0.01 * (((k + it * 7919) % 13) as f64) / 13.0;
        }

        // Anti-pattern: recompile the unchanged pattern every step.
        let t = Instant::now();
        let naive = SympilerLu::compile(&a, &opts)
            .expect("compile")
            .factor(&a)
            .expect("factor");
        let x_naive = naive.solve(&b);
        t_naive += t.elapsed();

        // Serving path: one request through the pool + shared cache.
        let t = Instant::now();
        let resp = service
            .submit(ServeRequest {
                a: a.clone(),
                opts: opts.clone(),
                rhs: vec![b.clone()],
            })
            .wait()
            .expect("served factor");
        t_served += t.elapsed();

        // Bitwise agreement: the served factor and solution are the
        // direct path's, exactly.
        assert!(
            resp.factor
                .l()
                .values()
                .iter()
                .chain(resp.factor.u().values())
                .zip(naive.l().values().iter().chain(naive.u().values()))
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "served factor diverged at iteration {it}"
        );
        assert!(
            resp.solutions[0]
                .iter()
                .zip(&x_naive)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "served solution diverged at iteration {it}"
        );
        assert!(ops::rel_residual(&a, &resp.solutions[0], &b) < 1e-10);
    }

    let stats = cache.stats();
    println!(
        "plan cache: {} compile(s), {} hit(s) (hit rate {:.3})",
        stats.misses,
        stats.hits,
        stats.hit_rate()
    );
    assert!(
        stats.misses <= 2,
        "one pattern must compile at most twice (two workers can race the first request)"
    );
    println!("recompile-per-step x{iterations}: {t_naive:?}");
    println!("served (cache + pool) x{iterations}: {t_served:?}");
    println!(
        "serving speedup: {:.2}x (symbolic cost paid once, not {iterations} times)",
        t_naive.as_secs_f64() / t_served.as_secs_f64().max(1e-12)
    );
    println!("circuit_simulation OK");
}
