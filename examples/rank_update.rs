//! Rank-1 update/downdate sequence — the "rank update methods" of the
//! paper's §1.1 motivation, where sparse triangular solves and
//! etree-path reach-sets do the heavy lifting.
//!
//! A Kalman-filter-like loop modifies `A <- A + w w^T` repeatedly; the
//! factor is *updated* along the etree path instead of refactorized,
//! and each update touches only `O(path length)` columns.
//!
//! Run with: `cargo run --release --example rank_update`

use std::time::Instant;
use sympiler::prelude::*;
use sympiler::solvers::cholesky::updown::{rank_update, update_path};
use sympiler::solvers::SimplicialCholesky;
use sympiler::sparse::{gen, ops};

fn main() {
    let a0 = gen::grid2d_laplacian(40, 40, false, 7);
    let n = a0.n_cols();
    let parent = sympiler::graph::etree(&a0);
    let chol = SimplicialCholesky::analyze(&a0).expect("SPD");
    let mut l = chol.factor(&a0).expect("factor");
    println!("n={n}, nnz(L)={}", l.nnz());

    // Accumulate A' = A + sum w_k w_k^T while updating the factor.
    let mut t_update = std::time::Duration::ZERO;
    let mut t_refactor = std::time::Duration::ZERO;
    let mut a_current = a0.clone();
    let rounds = 10;
    for k in 0..rounds {
        // w: scaled copy of a factor column (always a valid update).
        let col = (k * 37 + 5) % (n / 2);
        let mut w = vec![0.0; n];
        for (i, v) in l.col_iter(col) {
            w[i] = 0.2 * v;
        }
        let path = update_path(&parent, col);
        println!(
            "round {k}: update column {col}, etree path touches {} of {n} columns",
            path.len()
        );

        // Build A' = A + w w^T on the factor's pattern for verification.
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            for (i, v) in a_current.col_iter(j) {
                t.push(i, j, v);
            }
        }
        for j in 0..n {
            if w[j] == 0.0 {
                continue;
            }
            for i in j..n {
                if w[i] != 0.0 {
                    t.push(i, j, w[i] * w[j]);
                }
            }
        }
        a_current = t.to_csc().unwrap();

        // Update the factor in place.
        let mut wk = w.clone();
        let t0 = Instant::now();
        rank_update(&mut l, &parent, &mut wk, 1.0).expect("update stays SPD");
        t_update += t0.elapsed();

        // Compare cost against a full refactorization.
        let t0 = Instant::now();
        let chol_new = SimplicialCholesky::analyze(&a_current).expect("SPD");
        let l_fresh = chol_new.factor(&a_current).expect("factor");
        t_refactor += t0.elapsed();

        // The updated factor must solve the updated system.
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut x = b.clone();
        sympiler::solvers::trisolve::naive_forward(&l, &mut x);
        sympiler::solvers::trisolve::backward_transposed(&l, &mut x);
        let resid = ops::rel_residual_sym_lower(&a_current, &x, &b);
        assert!(resid < 1e-9, "round {k}: residual {resid}");
        let _ = l_fresh;
    }
    println!("\n{rounds} rank-1 updates:      {t_update:?}");
    println!("{rounds} full refactorizations: {t_refactor:?}");
    println!(
        "update speedup: {:.1}x (updates touch only the etree path)",
        t_refactor.as_secs_f64() / t_update.as_secs_f64()
    );
}
