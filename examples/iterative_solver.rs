//! Repeated sparse-RHS triangular solves — the §4.3 amortization
//! argument made concrete: "in preconditioned iterative solvers a
//! triangular system must be solved per iteration, and often the
//! iterative solver must execute thousands of iterations".
//!
//! Compares cumulative time of the Eigen-style guarded solver against
//! Sympiler (compile once + numeric per iteration) over a sweep of
//! iteration counts, printing the break-even point.
//!
//! Run with: `cargo run --release --example iterative_solver`

use std::time::Instant;
use sympiler::prelude::*;
use sympiler::solvers::trisolve;
use sympiler::sparse::{gen, rhs};

fn main() {
    // A factor-like L from a banded SPD matrix.
    let a = gen::banded_spd(3000, 24, 5);
    let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).expect("SPD");
    let l = chol.factor(&a).expect("factor").to_csc();
    let n = l.n_cols();
    let b = rhs::rhs_from_column_pattern(&l, 10, 3);
    println!(
        "L: n={n}, nnz={}; sparse RHS with {} nonzeros ({:.2}% fill)",
        l.nnz(),
        b.nnz(),
        100.0 * b.fill_ratio()
    );

    // Compile once.
    let t0 = Instant::now();
    let mut symp = SympilerTriSolve::compile(&l, b.indices(), &SympilerOptions::default());
    let compile = t0.elapsed();

    // Reference solution for verification.
    let mut x_ref = b.to_dense();
    trisolve::naive_forward(&l, &mut x_ref);

    let bd = b.to_dense();
    for &iters in &[1usize, 10, 100, 1000] {
        // Eigen-style: guarded loop every iteration.
        let mut x = vec![0.0; n];
        let t = Instant::now();
        for _ in 0..iters {
            x.copy_from_slice(&bd);
            trisolve::library_forward(&l, &mut x);
            std::hint::black_box(&x);
        }
        let t_eigen = t.elapsed();

        // Sympiler: numeric plan every iteration.
        let mut xs = vec![0.0; n];
        let t = Instant::now();
        for _ in 0..iters {
            symp.solve_into(&b, &mut xs);
            std::hint::black_box(&xs);
            symp.reset(&mut xs);
        }
        let t_symp = t.elapsed();
        symp.solve_into(&b, &mut xs);
        for (p, q) in xs.iter().zip(&x_ref) {
            assert!((p - q).abs() < 1e-10);
        }
        symp.reset(&mut xs);

        let total_symp = compile + t_symp;
        println!(
            "iters={iters:>5}: Eigen {t_eigen:>12?}  Sympiler(sym+num) {total_symp:>12?}  ratio {:.2}",
            total_symp.as_secs_f64() / t_eigen.as_secs_f64()
        );
    }
    println!("(ratio < 1 means Sympiler's one-off compile has amortized)");
}
