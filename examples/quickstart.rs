//! Quickstart: compile a Cholesky factorization and a triangular solve
//! specialized to one sparsity pattern, then use them.
//!
//! Run with: `cargo run --release --example quickstart`

use sympiler::prelude::*;
use sympiler::sparse::{gen, ops, rhs};

fn main() {
    // An SPD system from a 2-D Laplacian (5-point stencil), stored
    // lower-triangular — the kind of pattern that stays fixed across a
    // simulation (paper §1.2).
    let a = gen::grid2d_laplacian(30, 30, false, 42);
    println!(
        "A: {}x{} with {} stored nonzeros (lower)",
        a.n_rows(),
        a.n_cols(),
        a.nnz()
    );

    // --- Sympiler Cholesky: compile once, factor repeatedly ---
    let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).expect("matrix is SPD");
    println!(
        "compiled Cholesky plan: {} supernodes, {} flops",
        chol.plan().partition().n_supernodes(),
        chol.flops()
    );
    println!("symbolic report:\n{}", chol.report().to_table());

    let factor = chol.factor(&a).expect("numeric factorization");
    let b = vec![1.0; a.n_cols()];
    let x = factor.solve(&b);
    let resid = ops::rel_residual_sym_lower(&a, &x, &b);
    println!("solve residual: {resid:.3e}");
    assert!(resid < 1e-10);

    // --- Sympiler triangular solve with a sparse RHS ---
    let l = factor.to_csc();
    let sparse_b = rhs::rhs_from_column_pattern(&l, 3, 7);
    let mut tri = SympilerTriSolve::compile(&l, sparse_b.indices(), &SympilerOptions::default());
    println!(
        "compiled triangular solve: reach-set {} of {} columns, {} flops",
        tri.reach().len(),
        l.n_cols(),
        tri.flops()
    );
    let y = tri.solve(&sparse_b);
    // Verify L y = b.
    let resid_tri = ops::rel_residual(&l, &y, &sparse_b.to_dense());
    println!("triangular solve residual: {resid_tri:.3e}");
    assert!(resid_tri < 1e-12);

    println!("quickstart OK");
}
