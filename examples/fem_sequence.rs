//! FEM / PDE scenario (paper §1.2): a mesh-discretized operator is
//! factorized once, then a **sequence of sparse triangular solves**
//! runs inside a preconditioned iterative loop — the workload where the
//! paper notes "often the iterative solver must execute thousands of
//! iterations until convergence", amortizing all symbolic cost.
//!
//! Implements preconditioned conjugate gradient with the complete
//! Cholesky factor as (exact) preconditioner; each PCG iteration
//! performs the two triangular solves through the supernodal factor.
//!
//! Run with: `cargo run --release --example fem_sequence`

use sympiler::prelude::*;
use sympiler::sparse::{gen, ops};

fn main() {
    // 2-D FEM-like stiffness matrix (9-point stencil), RCM-ordered.
    let raw = gen::grid2d_laplacian(40, 40, true, 3);
    let (a, _perm) = sympiler::graph::rcm::rcm_permute(&raw);
    let n = a.n_cols();
    println!("FEM operator: n={n}, nnz(lower)={}", a.nnz());

    // Compile + factor once.
    let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).expect("SPD");
    let factor = chol.factor(&a).expect("factor");

    // PCG on A x = b with M = L L^T (converges in O(1) iterations since
    // the preconditioner is exact; the point is the solve sequence).
    let b: Vec<f64> = (0..n)
        .map(|i| ((i * 13) % 17) as f64 / 17.0 + 0.5)
        .collect();
    let mut x = vec![0.0; n];
    let mut r = b.clone(); // r = b - A x, x = 0
    let mut z = factor.solve(&r);
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    let mut iterations = 0;
    let mut solves = 1;
    for _ in 0..50 {
        iterations += 1;
        let mut ap = vec![0.0; n];
        ops::spmv_sym_lower(&a, &p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if rnorm < 1e-12 {
            break;
        }
        z = factor.solve(&r);
        solves += 1;
        let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let resid = ops::rel_residual_sym_lower(&a, &x, &b);
    println!("PCG converged in {iterations} iterations ({solves} preconditioner solves)");
    println!("final residual: {resid:.3e}");
    assert!(
        resid < 1e-10,
        "PCG must converge with an exact preconditioner"
    );
    println!("fem_sequence OK");
}
