//! FEM / PDE scenario (paper §1.2): a Newton (Picard) loop on a
//! nonlinear convection–diffusion problem re-factorizes the mesh
//! Jacobian at every step while its **sparsity pattern never changes**
//! — the workload where the paper notes the symbolic cost amortizes
//! over "thousands of iterations".
//!
//! This is the canonical serving-layer usage: the Newton loop does NOT
//! hold a plan by hand. Every step asks the [`PlanCache`] for the plan
//! of (pattern, options) — the first request compiles, every later
//! request is a cache hit returning the same `Arc`-shared plan — and
//! factors through a reused [`LuWorkspace`], so the steady-state cost
//! per step is numeric-only. After convergence, a batch of load cases
//! is solved against the final factor in one blocked multi-RHS
//! [`LuFactor::solve_batch`] sweep and verified bitwise against
//! per-RHS `solve()` calls.
//!
//! Run with: `cargo run --release --example fem_sequence`

use sympiler::prelude::*;
use sympiler::sparse::{gen, ops};

fn main() {
    // 2-D convection–diffusion Jacobian (upwind 5-point stencil): the
    // pattern is fixed by the mesh; the values depend on the convection
    // field, which the nonlinear iteration updates every step.
    let a0 = gen::convection_diffusion_2d(40, 40, 4.0, 3);
    let n = a0.n_cols();
    println!("FEM Jacobian: n={n}, nnz={}", a0.nnz());

    let opts = SympilerOptions::default();
    let cache = PlanCache::new(CacheConfig::default());
    let mut ws = LuWorkspace::new();

    // Picard iteration with a lagged convection field: scale the
    // off-diagonal (convection-carrying) entries by a factor driven by
    // the previous iterate, damped so the fixed point exists. Pattern
    // fixed, values fresh each step — exactly the cache's contract.
    let b: Vec<f64> = (0..n)
        .map(|i| 1.0 + ((i * 13) % 17) as f64 / 17.0)
        .collect();
    let mut x = vec![0.0; n];
    let mut steps = 0;
    let mut last_factor = None;
    for step in 0..30 {
        steps += 1;
        // "Nonlinearity": convection strength tracks |x| (damped).
        let xnorm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let s = 1.0 + 0.05 * (xnorm / (1.0 + xnorm));
        let mut a = a0.clone();
        for v in a.values_mut() {
            *v *= s;
        }

        // The serving path: cache lookup (one compile total), then a
        // numeric-only factorization into the reused workspace.
        let plan = cache.get_or_compile(&a, &opts).expect("plan");
        let f = plan.factor_with(&a, &mut ws).expect("factor");
        let x_new = f.solve(&b);

        let delta = x_new
            .iter()
            .zip(&x)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let resid = ops::rel_residual(&a, &x_new, &b);
        assert!(resid < 1e-10, "linear solve must be exact per step");
        x = x_new;
        last_factor = Some((f, a));
        if step > 0 && delta < 1e-12 * (1.0 + xnorm) {
            break;
        }
    }
    let stats = cache.stats();
    println!(
        "Newton steps: {steps}; plan cache: {} compile(s), {} hit(s) (hit rate {:.3})",
        stats.misses,
        stats.hits,
        stats.hit_rate()
    );
    assert_eq!(stats.misses, 1, "one pattern must compile exactly once");
    assert_eq!(stats.hits as usize, steps - 1);

    // Blocked multi-RHS epilogue: solve several load cases against the
    // converged factor in one sweep; bitwise-identical to solve().
    let (f, a) = last_factor.expect("at least one step ran");
    let loads: Vec<Vec<f64>> = (0..4)
        .map(|c| (0..n).map(|i| 1.0 + ((i + c) % 5) as f64).collect())
        .collect();
    let xs = f.solve_batch(&loads);
    for (c, xc) in xs.iter().enumerate() {
        let want = f.solve(&loads[c]);
        assert!(
            xc.iter()
                .zip(&want)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "blocked solve diverged from solve() on load case {c}"
        );
        assert!(ops::rel_residual(&a, xc, &loads[c]) < 1e-10);
    }
    println!("{} load cases solved in one blocked sweep", loads.len());
    println!("fem_sequence OK");
}
