//! Observability-layer integration tests: profile round trips, the
//! bitwise-identity contract with instrumentation on, per-thread span
//! lanes, exact flop attribution across the three LU execution tiers,
//! and the numerical-health monitors.

use std::sync::Arc;
use sympiler::prelude::*;
use sympiler::sparse::gen;

fn problem() -> CscMatrix {
    gen::circuit_unsym(120, 4, 2, 11)
}

/// Compile the serial scalar tier with an explicit profiler.
fn profiled_plan(a: &CscMatrix, profiler: Arc<Profiler>) -> LuPlan {
    LuPlan::build_profiled(a, true, 2, Ordering::Natural, PrePivot::Off, profiler).unwrap()
}

#[test]
fn profile_json_round_trips_through_chrome_trace() {
    let a = problem();
    let profiler = Arc::new(Profiler::enabled());
    let plan = profiled_plan(&a, Arc::clone(&profiler));
    plan.factor(&a).unwrap();
    let mut trace = TraceFile::new("obs_test");
    trace.push(profiler.snapshot("circuit"));
    let text = trace.to_chrome_json();
    let parsed = TraceFile::from_chrome_json(&text).unwrap();
    assert_eq!(parsed.experiment, trace.experiment);
    assert_eq!(parsed.profiles.len(), 1);
    let (orig, back) = (&trace.profiles[0], &parsed.profiles[0]);
    assert_eq!(orig.label, back.label);
    assert_eq!(orig.spans, back.spans, "spans must survive exactly");
    assert_eq!(orig.counters, back.counters);
    assert_eq!(orig.gauges.len(), back.gauges.len());
    for ((n1, v1), (n2, v2)) in orig.gauges.iter().zip(&back.gauges) {
        assert_eq!(n1, n2);
        assert_eq!(v1, v2, "gauge {n1} must round-trip exactly");
    }
}

#[test]
fn disabled_profiler_keeps_all_three_tiers_bitwise_identical() {
    let a = problem();
    let collect = |profile: bool, block_lu: BlockLu, n_threads: usize| -> Vec<u64> {
        let lu = SympilerLu::compile(
            &a,
            &SympilerOptions {
                profile,
                block_lu,
                n_threads,
                ..Default::default()
            },
        )
        .unwrap();
        let f = lu.factor(&a).unwrap();
        f.l()
            .values()
            .iter()
            .chain(f.u().values())
            .map(|v| v.to_bits())
            .collect()
    };
    // Serial, parallel, and supernodal: profiling on vs. off must not
    // change a single bit of the factors (instrumentation is purely
    // observational).
    for (block_lu, n_threads) in [
        (BlockLu::Off, 1),
        (BlockLu::Off, 4),
        (BlockLu::On, 1),
        (BlockLu::On, 4),
    ] {
        assert_eq!(
            collect(false, block_lu, n_threads),
            collect(true, block_lu, n_threads),
            "profiling must be invisible to the numbers ({block_lu:?}, {n_threads} threads)"
        );
    }
}

#[test]
fn parallel_tier_records_per_thread_lanes_and_counters() {
    let a = problem();
    for threads in [1usize, 2, 4] {
        let profiler = Arc::new(Profiler::enabled());
        let plan = profiled_plan(&a, Arc::clone(&profiler));
        ParallelLuPlan::from_plan(plan, threads).factor(&a).unwrap();
        let snap = profiler.snapshot("par");
        if threads == 1 {
            // One worker compiles to the serial plan — serial span.
            assert_eq!(snap.spans_named("factor:serial").count(), 1);
            continue;
        }
        assert_eq!(snap.spans_named("factor:parallel").count(), 1);
        // Every worker must report busy/wait counters and have run
        // work spans on its own lane.
        for t in 0..threads {
            assert!(
                snap.counter(&format!("par.t{t}.busy_ns")).is_some(),
                "busy counter for worker {t} at {threads} threads"
            );
            assert!(
                snap.counter(&format!("par.t{t}.wait_ns")).is_some(),
                "wait counter for worker {t} at {threads} threads"
            );
            assert!(
                snap.spans_named("work").any(|s| s.lane == t),
                "work span on lane {t} at {threads} threads"
            );
        }
        // No counters for workers that don't exist.
        assert!(snap.counter(&format!("par.t{threads}.busy_ns")).is_none());
        let imbalance = snap.gauge("par.imbalance").expect("imbalance gauge");
        assert!(imbalance >= 1.0, "max/mean busy ratio is at least 1");
    }
}

#[test]
fn flop_attribution_matches_compile_time_counts_exactly() {
    let a = problem();
    let profiler = Arc::new(Profiler::enabled());
    let plan = profiled_plan(&a, Arc::clone(&profiler));
    let want = plan.flops();
    assert_eq!(
        plan.per_column_flops().iter().sum::<u64>(),
        want,
        "per-column flops sum to the total"
    );
    // Serial tier.
    plan.factor(&a).unwrap();
    assert_eq!(profiler.counter_value("flops.scalar"), want);
    // Parallel tier (clone shares the profiler; counter accumulates).
    ParallelLuPlan::from_plan(plan.clone(), 4)
        .factor(&a)
        .unwrap();
    assert_eq!(profiler.counter_value("flops.scalar"), 2 * want);
    // Supernodal tier: dense + scalar attribution covers every flop.
    SupernodalLuPlan::from_plan(plan.clone(), 32, 2)
        .factor(&a)
        .unwrap();
    let dense = profiler.counter_value("flops.dense");
    let scalar = profiler.counter_value("flops.scalar") - 2 * want;
    assert_eq!(dense + scalar, want, "supernodal dense+scalar == plan");
    assert!(dense > 0, "wide panels must attribute dense flops");
    // Wide panels carry per-panel spans with exact flop args.
    let snap = profiler.snapshot("sup");
    let panel_flops: f64 = snap
        .spans_named("panel")
        .map(|s| {
            s.args
                .iter()
                .find(|(k, _)| k == "flops")
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        })
        .sum();
    assert_eq!(panel_flops as u64, dense, "panel spans sum to dense flops");
    assert!(snap
        .spans_named("panel")
        .all(|s| s.args.iter().any(|(k, _)| k == "gflops")));
}

#[test]
fn health_monitors_surface_on_profiled_factors() {
    let a = problem();
    let profiler = Arc::new(Profiler::enabled());
    let plan = profiled_plan(&a, Arc::clone(&profiler));
    let f = plan.factor(&a).unwrap();
    let health = *f.health().expect("profiled factor carries health");
    assert_eq!(
        health,
        plan.health_of(&a, &f),
        "inline health equals recomputation"
    );
    assert!(
        health.growth > 0.0 && health.growth.is_finite(),
        "growth is a positive finite ratio"
    );
    assert!(health.min_pivot > 0.0 && health.min_pivot <= health.max_pivot);
    assert!(
        health.min_matched_diag > 0.0,
        "diagonal structurally present"
    );
    let snap = profiler.snapshot("health");
    assert_eq!(snap.gauge("health.growth"), Some(health.growth));
    assert_eq!(snap.gauge("health.min_pivot"), Some(health.min_pivot));
    // Unprofiled factors don't pay for it.
    let off = LuPlan::build_pivoted(&a, true, 2, Ordering::Natural, PrePivot::Off).unwrap();
    assert!(off.factor(&a).unwrap().health().is_none());
}

#[test]
fn lane_exhaustion_beyond_32_threads_degrades_gracefully() {
    use sympiler::core::serve::{CacheConfig, FactorService, PlanCache, ServeRequest};
    use sympiler::obs::MAX_LANES;

    // Raw hammer: more threads than lanes, each opening and closing
    // spans concurrently. Overflow lanes clamp onto the last lane
    // (which several threads then share); nothing may panic, every
    // span must be recorded, and no span may claim an out-of-range
    // lane.
    let threads = MAX_LANES + 8;
    let profiler = Arc::new(Profiler::enabled());
    std::thread::scope(|s| {
        for t in 0..threads {
            let prof = Arc::clone(&profiler);
            s.spawn(move || {
                for i in 0..16 {
                    let id = prof.begin(t, "hammer");
                    prof.end_with(id, &[("i", i as f64)]);
                }
            });
        }
    });
    let snap = profiler.snapshot("hammer");
    assert_eq!(
        snap.spans_named("hammer").count(),
        threads * 16,
        "every span survives lane clamping"
    );
    assert!(
        snap.spans.iter().all(|s| s.lane < MAX_LANES),
        "clamped lanes stay in range"
    );

    // Service shape: more workers than span lanes. The overflow
    // workers share the clamped last lane; every request must still
    // succeed and leave its root span on a valid worker lane.
    let a = problem();
    let profiler = Arc::new(Profiler::enabled());
    let cache = Arc::new(PlanCache::with_profiler(
        CacheConfig::default(),
        Arc::clone(&profiler),
    ));
    let workers = MAX_LANES + 4;
    let service = FactorService::new(workers, Arc::clone(&cache));
    let requests = 2 * workers;
    let tickets: Vec<_> = (0..requests)
        .map(|req| {
            let mut m = a.clone();
            for v in m.values_mut() {
                *v *= 1.0 + 1e-3 * (req as f64);
            }
            service.submit(ServeRequest {
                a: m,
                opts: SympilerOptions::default(),
                rhs: Vec::new(),
            })
        })
        .collect();
    for t in tickets {
        t.wait()
            .expect("request on a shared overflow lane succeeds");
    }
    let snap = profiler.snapshot("lanes");
    assert_eq!(
        snap.spans_named("request").count(),
        requests,
        "one root span per request even with workers sharing a lane"
    );
    assert!(
        snap.spans.iter().all(|s| s.lane >= 1 && s.lane < MAX_LANES),
        "service spans stay on worker lanes (1..MAX_LANES)"
    );
}

#[test]
fn compile_spans_and_set_gauges_share_the_trace() {
    let a = problem();
    let lu = SympilerLu::compile(
        &a,
        &SympilerOptions {
            profile: true,
            ..Default::default()
        },
    )
    .unwrap();
    lu.factor(&a).unwrap();
    let snap = lu.profiler().snapshot("compile");
    assert!(
        snap.spans.iter().any(|s| s.name.starts_with("compile: ")),
        "compile stages land on the same trace as the numeric phase"
    );
    for (name, size) in &lu.report().set_sizes {
        assert_eq!(
            snap.gauge(&format!("sets.{name}")),
            Some(*size as f64),
            "set size {name} must ride the trace as a gauge"
        );
    }
}
