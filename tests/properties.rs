//! Property-based tests (proptest) over the core invariants:
//!
//! * every Cholesky engine reconstructs `A = L L^T`;
//! * every triangular-solve variant matches dense substitution;
//! * reach-sets equal brute-force reachability and are topological;
//! * symbolic predictions (pattern, flops) match numeric reality;
//! * supernode partitions are contiguous covers with nesting patterns;
//! * LU engines satisfy `P A = L U` against the dense reference.

use proptest::prelude::*;
use sympiler::prelude::*;
use sympiler::solvers::{SimplicialCholesky, SupernodalCholesky};

/// Strategy: a random square unsymmetric, statically pivotable matrix.
fn unsym_matrix() -> impl Strategy<Value = CscMatrix> {
    (1usize..=40, 0usize..=5, 0u64..1000).prop_map(|(n, extra, seed)| {
        if n < 4 {
            // Tiny: dense-ish unsymmetric block via the random generator
            // with full coupling.
            sympiler::sparse::gen::random_unsym(n, n.saturating_sub(1), seed)
        } else {
            match seed % 3 {
                0 => sympiler::sparse::gen::random_unsym(n, extra.min(n - 1), seed),
                1 => sympiler::sparse::gen::circuit_unsym(n.max(4), 3, 1, seed),
                _ => {
                    let side = (2 + n / 6).max(2);
                    sympiler::sparse::gen::convection_diffusion_2d(side, side, 1.5, seed)
                }
            }
        }
    })
}

/// Dense `P A` and `L U` products compared entrywise to `tol`.
fn assert_pa_eq_lu(
    a: &CscMatrix,
    l: &CscMatrix,
    u: &CscMatrix,
    row_perm: &[usize],
    tol: f64,
) -> Result<(), String> {
    let n = a.n_cols();
    let ad = a.to_dense();
    let ld = l.to_dense();
    let ud = u.to_dense();
    for j in 0..n {
        for i in 0..n {
            // (L U)[i, j]
            let mut lu = 0.0;
            for k in 0..n {
                lu += ld[k * n + i] * ud[j * n + k];
            }
            let pa = ad[j * n + row_perm[i]];
            if (lu - pa).abs() > tol {
                return Err(format!("PA != LU at ({i}, {j}): {pa} vs {lu} (n = {n})"));
            }
        }
    }
    Ok(())
}

/// Strategy: a random SPD matrix in lower storage (diagonally dominant
/// by construction), sizes 1..=40, varying sparsity.
fn spd_matrix() -> impl Strategy<Value = CscMatrix> {
    (1usize..=40, 0usize..=5, 0u64..1000).prop_map(|(n, extra, seed)| {
        if n == 1 {
            let mut t = TripletMatrix::new(1, 1);
            t.push(0, 0, 4.0);
            t.to_csc().unwrap()
        } else if n < 5 {
            // tiny: tridiagonal SPD
            sympiler::sparse::gen::banded_spd(n, 1, seed)
        } else {
            sympiler::sparse::gen::random_spd(n, extra.min(n - 1).max(1), seed)
        }
    })
}

/// Strategy: a random well-conditioned lower-triangular matrix.
fn lower_matrix() -> impl Strategy<Value = CscMatrix> {
    (1usize..=60, 0usize..=4, 0u64..1000)
        .prop_map(|(n, extra, seed)| sympiler::sparse::gen::random_lower_triangular(n, extra, seed))
}

/// Strategy: sparse RHS pattern for a dimension-n system.
fn beta_for(n: usize, seed: u64) -> Vec<usize> {
    let mut out: Vec<usize> = (0..n)
        .filter(|&i| (i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 7 < 2)
        .collect();
    if out.is_empty() {
        out.push(seed as usize % n);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cholesky_engines_reconstruct_a(a in spd_matrix()) {
        let l_simp = SimplicialCholesky::analyze(&a).unwrap().factor(&a).unwrap();
        prop_assert!(sympiler::solvers::verify::reconstruction_error(&a, &l_simp) < 1e-9);

        let l_super = SupernodalCholesky::analyze(&a, 0).unwrap().factor(&a).unwrap().to_csc();
        prop_assert!(sympiler::solvers::verify::reconstruction_error(&a, &l_super) < 1e-9);

        let l_plan = SympilerCholesky::compile(&a, &SympilerOptions::default())
            .unwrap().factor(&a).unwrap().to_csc();
        prop_assert!(sympiler::solvers::verify::reconstruction_error(&a, &l_plan) < 1e-9);
    }

    #[test]
    fn symbolic_pattern_predicts_numeric_factor(a in spd_matrix()) {
        let sym = sympiler::graph::symbolic_cholesky(&a);
        let l = SimplicialCholesky::analyze(&a).unwrap().factor(&a).unwrap();
        prop_assert_eq!(l.col_ptr(), sym.l_col_ptr.as_slice());
        prop_assert_eq!(l.row_idx(), sym.l_row_idx.as_slice());
    }

    #[test]
    fn trisolve_variants_agree(l in lower_matrix(), seed in 0u64..100) {
        let n = l.n_cols();
        let beta = beta_for(n, seed);
        let values: Vec<f64> = beta.iter().map(|&i| 1.0 + (i % 3) as f64).collect();
        let b = SparseVec::try_new(n, beta.clone(), values).unwrap();

        let mut x_ref = b.to_dense();
        sympiler::solvers::trisolve::naive_forward(&l, &mut x_ref);

        let mut ts = SympilerTriSolve::compile(&l, b.indices(), &SympilerOptions::default());
        let x = ts.solve(&b);
        for i in 0..n {
            prop_assert!((x[i] - x_ref[i]).abs() < 1e-9,
                "x[{}] = {} vs {}", i, x[i], x_ref[i]);
        }
    }

    #[test]
    fn reach_set_is_exact_and_topological(l in lower_matrix(), seed in 0u64..100) {
        let n = l.n_cols();
        let beta = beta_for(n, seed);
        let reach = sympiler::graph::reach(&l, &beta);
        // Brute force reachability.
        let mut expect = std::collections::BTreeSet::new();
        let mut stack = beta.clone();
        while let Some(j) = stack.pop() {
            if expect.insert(j) {
                for &i in &l.col_rows(j)[1..] {
                    stack.push(i);
                }
            }
        }
        let got: std::collections::BTreeSet<usize> = reach.iter().copied().collect();
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(reach.len(), got.len(), "no duplicates");
        // Topological order.
        let pos: std::collections::HashMap<usize, usize> =
            reach.iter().enumerate().map(|(k, &j)| (j, k)).collect();
        for &j in &reach {
            for &i in &l.col_rows(j)[1..] {
                prop_assert!(pos[&j] < pos[&i]);
            }
        }
    }

    #[test]
    fn solution_pattern_contained_in_reach(l in lower_matrix(), seed in 0u64..100) {
        let n = l.n_cols();
        let beta = beta_for(n, seed);
        let values: Vec<f64> = beta.iter().map(|_| 1.5).collect();
        let b = SparseVec::try_new(n, beta, values).unwrap();
        let reach: std::collections::BTreeSet<usize> =
            sympiler::graph::reach(&l, b.indices()).into_iter().collect();
        let mut x = b.to_dense();
        sympiler::solvers::trisolve::naive_forward(&l, &mut x);
        for (i, &v) in x.iter().enumerate() {
            if v != 0.0 {
                prop_assert!(reach.contains(&i), "x[{}] nonzero outside reach", i);
            }
        }
    }

    #[test]
    fn supernode_partition_is_contiguous_nesting_cover(a in spd_matrix()) {
        let sym = sympiler::graph::symbolic_cholesky(&a);
        let part = sympiler::graph::supernodes_cholesky(&sym, 0);
        let n = a.n_cols();
        prop_assert_eq!(part.n_cols(), n);
        // Contiguous cover.
        let mut covered = 0;
        for s in 0..part.n_supernodes() {
            prop_assert_eq!(part.cols(s).start, covered);
            covered = part.cols(s).end;
            // Nesting patterns inside the supernode.
            let cols: Vec<usize> = part.cols(s).collect();
            for w in cols.windows(2) {
                prop_assert_eq!(&sym.col_pattern(w[0])[1..], sym.col_pattern(w[1]));
            }
        }
        prop_assert_eq!(covered, n);
    }

    #[test]
    fn factor_flops_are_consistent(a in spd_matrix()) {
        let sym = sympiler::graph::symbolic_cholesky(&a);
        let plan = SympilerCholesky::compile(&a, &SympilerOptions::default()).unwrap();
        prop_assert_eq!(plan.flops(), sym.factor_flops());
        // Flops lower bound: every stored entry of L costs at least 1.
        prop_assert!(sym.factor_flops() >= sym.l_nnz() as u64);
    }

    #[test]
    fn lu_plan_satisfies_pa_eq_lu(a in unsym_matrix()) {
        // Sympiler LU plan (static pivoting, P = I): dense reference.
        let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
        let f = lu.factor(&a).unwrap();
        let identity: Vec<usize> = (0..a.n_cols()).collect();
        if let Err(m) = assert_pa_eq_lu(&a, f.l(), f.u(), &identity, 1e-10) {
            prop_assert!(false, "plan: {}", m);
        }
        // The coupled baseline must produce the same factors.
        let base = GpLu::factor(&a, Pivoting::None).unwrap();
        prop_assert!(f.l().same_pattern(&base.l));
        prop_assert!(f.u().same_pattern(&base.u));
        for (x, y) in f.u().values().iter().zip(base.u.values()) {
            prop_assert!((x - y).abs() < 1e-10, "factor drift {} vs {}", x, y);
        }
    }

    #[test]
    fn gplu_partial_pivoting_satisfies_pa_eq_lu(a in unsym_matrix()) {
        let f = GpLu::factor(&a, Pivoting::Partial).unwrap();
        if let Err(m) = assert_pa_eq_lu(&a, &f.l, &f.u, &f.row_perm, 1e-10) {
            prop_assert!(false, "partial: {}", m);
        }
        // Solve path: A x = b round-trips.
        let n = a.n_cols();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let x = f.solve(&b);
        prop_assert!(
            sympiler::sparse::ops::rel_residual(&a, &x, &b) < 1e-9,
            "residual too large"
        );
    }

    #[test]
    fn orderings_return_valid_permutations(a in unsym_matrix()) {
        for ordering in Ordering::ALL {
            match sympiler::graph::compute_ordering(&a, ordering) {
                None => prop_assert_eq!(ordering, Ordering::Natural),
                Some(q) => {
                    prop_assert_eq!(q.len(), a.n_cols());
                    prop_assert!(
                        sympiler::sparse::ops::inverse_permutation(&q).is_ok(),
                        "{} must produce a bijection", ordering.label()
                    );
                }
            }
        }
    }

    #[test]
    fn ordered_lu_plan_satisfies_qaq_eq_lu(a in unsym_matrix()) {
        // Under any ordering the compiled factors satisfy Qᵀ A Q = L U
        // (dense check, identity row perm) and the solve answers the
        // original system.
        for ordering in [Ordering::Rcm, Ordering::Colamd] {
            let opts = SympilerOptions { ordering, ..Default::default() };
            let lu = SympilerLu::compile(&a, &opts).unwrap();
            let f = lu.factor(&a).unwrap();
            let ordered_a = match lu.col_perm() {
                Some(q) => sympiler::sparse::ops::permute_rows_cols(&a, q).unwrap(),
                None => a.clone(),
            };
            let identity: Vec<usize> = (0..a.n_cols()).collect();
            if let Err(m) = assert_pa_eq_lu(&ordered_a, f.l(), f.u(), &identity, 1e-10) {
                prop_assert!(false, "{}: {}", ordering.label(), m);
            }
            let n = a.n_cols();
            let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
            let x = f.solve(&b);
            prop_assert!(
                sympiler::sparse::ops::rel_residual(&a, &x, &b) < 1e-9,
                "{}: residual too large", ordering.label()
            );
        }
    }

    #[test]
    fn supernodal_lu_matches_serial_plan(a in unsym_matrix()) {
        // The supernodal tier must agree with the serial plan to
        // ≤ 1e-12 (dense kernels only reassociate sums) under every
        // ordering and panel cap, with identical patterns and a valid
        // panel partition.
        for ordering in Ordering::ALL {
            let serial = SympilerLu::compile(&a, &SympilerOptions {
                ordering,
                block_lu: BlockLu::Off,
                ..Default::default()
            }).unwrap();
            let f_serial = serial.factor(&a).unwrap();
            for max_panel in [0usize, 3] {
                let sup = SympilerLu::compile(&a, &SympilerOptions {
                    ordering,
                    block_lu: BlockLu::On,
                    max_panel,
                    ..Default::default()
                }).unwrap();
                let plan = sup.supernodal().expect("On always compiles the engine");
                let widths: usize = (0..plan.n_panels())
                    .map(|s| plan.partition().width(s))
                    .sum();
                prop_assert_eq!(widths, a.n_cols());
                if max_panel > 0 {
                    prop_assert!(plan.max_panel_width() <= max_panel.max(1));
                }
                let f_sup = sup.factor(&a).unwrap();
                prop_assert!(f_sup.l().same_pattern(f_serial.l()));
                prop_assert!(f_sup.u().same_pattern(f_serial.u()));
                for (x, y) in f_sup.l().values().iter().chain(f_sup.u().values())
                    .zip(f_serial.l().values().iter().chain(f_serial.u().values()))
                {
                    prop_assert!(
                        (x - y).abs() <= 1e-12 * (1.0 + y.abs()),
                        "{} cap {}: {} vs {}", ordering.label(), max_panel, x, y
                    );
                }
            }
        }
    }

    #[test]
    fn relaxed_amalgamation_agrees_with_strict_and_serial(a in unsym_matrix()) {
        // The amalgamation contract: a relaxed supernodal plan
        // (explicit padded zeros admitted under the fill budget) must
        // agree with BOTH the strict-nesting supernodal plan and the
        // scalar serial tier within 1e-12, with identical factor
        // patterns, across ordering × pre_pivot × thread count —
        // padding adds exact zeros to the dense panels, never numbers.
        for ordering in Ordering::ALL {
            for pre_pivot in [PrePivot::Off, PrePivot::WeightedMatching] {
                let base_opts = SympilerOptions {
                    ordering,
                    pre_pivot,
                    block_lu: BlockLu::Off,
                    ..Default::default()
                };
                let serial = SympilerLu::compile(&a, &base_opts).unwrap();
                let f_serial = serial.factor(&a).unwrap();
                let strict = SympilerLu::compile(&a, &SympilerOptions {
                    block_lu: BlockLu::On,
                    relax_fill: 0.0,
                    ..base_opts.clone()
                }).unwrap();
                let f_strict = strict.factor(&a).unwrap();
                for threads in [1usize, 3] {
                    let relaxed = SympilerLu::compile(&a, &SympilerOptions {
                        block_lu: BlockLu::On,
                        n_threads: threads,
                        ..base_opts.clone()
                    }).unwrap();
                    prop_assert!(relaxed.is_supernodal());
                    let fr = relaxed.factor(&a).unwrap();
                    prop_assert!(fr.l().same_pattern(f_serial.l()));
                    prop_assert!(fr.u().same_pattern(f_serial.u()));
                    for ((x, s), t) in fr.l().values().iter().chain(fr.u().values())
                        .zip(f_serial.l().values().iter().chain(f_serial.u().values()))
                        .zip(f_strict.l().values().iter().chain(f_strict.u().values()))
                    {
                        prop_assert!((x - s).abs() <= 1e-12 * (1.0 + s.abs()),
                            "{}+{} @{}T vs serial: {} vs {}",
                            ordering.label(), pre_pivot.label(), threads, x, s);
                        prop_assert!((x - t).abs() <= 1e-12 * (1.0 + t.abs()),
                            "{}+{} @{}T vs strict panels: {} vs {}",
                            ordering.label(), pre_pivot.label(), threads, x, t);
                    }
                }
            }
        }
    }

    #[test]
    fn relax_fill_zero_is_bitwise_identical_to_strict_panels(a in unsym_matrix()) {
        // `relax_fill = 0` must be perfectly inert: the same panel
        // partition as the strict-nesting constructor, zero padded
        // slots, and bitwise-identical factors.
        use sympiler::core::plan::lu_supernodal::SupernodalLuPlan;
        for ordering in [Ordering::Natural, Ordering::Colamd] {
            let opts = SympilerOptions {
                ordering,
                block_lu: BlockLu::On,
                relax_fill: 0.0,
                ..Default::default()
            };
            let lu0 = SympilerLu::compile(&a, &opts).unwrap();
            let sup0 = lu0.supernodal().expect("On always compiles the engine");
            prop_assert_eq!(sup0.padded_zeros(), 0,
                "a zero budget must admit no explicit zeros");
            let strict = SupernodalLuPlan::from_plan(
                lu0.plan().clone(), opts.max_panel, 1,
            );
            prop_assert_eq!(sup0.n_panels(), strict.n_panels());
            for s in 0..strict.n_panels() {
                prop_assert_eq!(sup0.partition().width(s), strict.partition().width(s));
            }
            let f0 = lu0.factor(&a).unwrap();
            let fs = strict.factor(&a).unwrap();
            for (x, y) in f0.l().values().iter().chain(f0.u().values())
                .zip(fs.l().values().iter().chain(fs.u().values()))
            {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                    "{}: relax_fill = 0 moved bits", ordering.label());
            }
        }
    }

    #[test]
    fn sparse_rhs_solve_matches_dense_solve(a in unsym_matrix(), seed in 0u64..50) {
        let n = a.n_cols();
        let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
        let f = lu.factor(&a).unwrap();
        let idx: Vec<usize> = (0..n)
            .filter(|i| (i * 7 + seed as usize).is_multiple_of(5))
            .collect();
        let vals: Vec<f64> = idx.iter().map(|&i| 1.0 + (i % 4) as f64).collect();
        let b = SparseVec::try_new(n, idx, vals).unwrap();
        let xs = f.solve_sparse(&b).to_dense();
        let xd = f.solve(&b.to_dense());
        for i in 0..n {
            prop_assert!(
                (xs[i] - xd[i]).abs() < 1e-10 * (1.0 + xd[i].abs()),
                "row {}: {} vs {}", i, xs[i], xd[i]
            );
        }
    }

    #[test]
    fn lu_symbolic_pattern_predicts_numeric_factor(a in unsym_matrix()) {
        let sym = sympiler::graph::lu_symbolic(&a);
        let f = GpLu::factor(&a, Pivoting::None).unwrap();
        prop_assert_eq!(f.l.col_ptr(), sym.l_col_ptr.as_slice());
        prop_assert_eq!(f.l.row_idx(), sym.l_row_idx.as_slice());
        prop_assert_eq!(f.u.col_ptr(), sym.u_col_ptr.as_slice());
        prop_assert_eq!(f.u.row_idx(), sym.u_row_idx.as_slice());
        // Flop accounting agrees with the compiled plan.
        let plan = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
        prop_assert_eq!(plan.flops(), sym.factor_flops());
    }

    #[test]
    fn spd_solve_has_small_residual(a in spd_matrix(), scale in 1.0f64..4.0) {
        let n = a.n_cols();
        let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).unwrap();
        let f = chol.factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| scale * (1.0 + (i % 4) as f64)).collect();
        let x = f.solve(&b);
        let resid = sympiler::sparse::ops::rel_residual_sym_lower(&a, &x, &b);
        prop_assert!(resid < 1e-9, "residual {}", resid);
    }
}

/// Strategy: a random matrix with structurally zero diagonal entries —
/// the pre-pivot workloads (scrambled circuits and saddle-point/KKT
/// systems).
fn zero_diag_matrix() -> impl Strategy<Value = CscMatrix> {
    (12usize..=36, 0u64..500).prop_map(|(n, seed)| {
        if seed % 2 == 0 {
            sympiler::sparse::gen::circuit_zero_diag(n.max(16), 3, 1, seed)
        } else {
            let k = (n / 4).max(1);
            sympiler::sparse::gen::saddle_point_2x2(n.max(2 * k + 1), k, seed)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pre_pivot_composes_with_every_ordering_across_tiers(a in zero_diag_matrix()) {
        // The satellite contract: serial / parallel / supernodal
        // agreement plus baseline verification across every
        // (ordering, pre_pivot) pair — on matrices the Off pipeline
        // rejects outright.
        prop_assert!(sympiler::sparse::ops::structurally_zero_diagonals(&a) > 0);
        let n = a.n_cols();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        for ordering in Ordering::ALL {
            for pre_pivot in [PrePivot::Transversal, PrePivot::WeightedMatching] {
                let opts = SympilerOptions {
                    ordering,
                    pre_pivot,
                    block_lu: BlockLu::Off,
                    ..Default::default()
                };
                let serial = SympilerLu::compile(&a, &opts).unwrap();
                prop_assert_eq!(serial.matched_diagonals(), n);
                let f = serial.factor(&a).unwrap();
                // Parallel: bitwise identical.
                let par = SympilerLu::compile(&a, &SympilerOptions {
                    n_threads: 3,
                    ..opts.clone()
                }).unwrap();
                let fp = par.factor(&a).unwrap();
                for (x, y) in fp.l().values().iter().chain(fp.u().values())
                    .zip(f.l().values().iter().chain(f.u().values()))
                {
                    prop_assert_eq!(x.to_bits(), y.to_bits(),
                        "{}+{}: parallel bits moved", ordering.label(), pre_pivot.label());
                }
                // Supernodal: relative agreement (growth-aware for the
                // pattern-only transversal, which may pivot small).
                let vtol = if pre_pivot == PrePivot::Transversal { 1e-7 } else { 1e-10 };
                let sup = SympilerLu::compile(&a, &SympilerOptions {
                    block_lu: BlockLu::On,
                    ..opts.clone()
                }).unwrap();
                let fs = sup.factor(&a).unwrap();
                for (x, y) in fs.l().values().iter().chain(fs.u().values())
                    .zip(f.l().values().iter().chain(f.u().values()))
                {
                    prop_assert!((x - y).abs() <= vtol * (1.0 + y.abs()),
                        "{}+{} supernodal: {} vs {}",
                        ordering.label(), pre_pivot.label(), x, y);
                }
                // Baseline verification: identical pre-pivoted GPLU
                // factors (1e-10 under the weighted matching), and the
                // solve answers the original system.
                let base = GpLu::factor_prepivoted(&a, Pivoting::None, pre_pivot, ordering)
                    .unwrap();
                prop_assert!(f.l().same_pattern(&base.factors.l));
                prop_assert!(f.u().same_pattern(&base.factors.u));
                for (x, y) in f.u().values().iter().zip(base.factors.u.values()) {
                    prop_assert!((x - y).abs() < vtol * (1.0 + y.abs()),
                        "{}+{}: baseline drift {} vs {}",
                        ordering.label(), pre_pivot.label(), x, y);
                }
                let x = f.solve(&b);
                prop_assert!(
                    sympiler::sparse::ops::rel_residual(&a, &x, &b) < vtol.max(1e-9),
                    "{}+{}: residual", ordering.label(), pre_pivot.label()
                );
            }
        }
    }

    #[test]
    fn perturbation_off_is_bitwise_inert_in_every_tier(a in unsym_matrix()) {
        // The robustness ladder's Layer-1 contract: pivot_perturb == 0.0
        // (the default) must not move a single bit in any execution
        // tier, and an *armed* tolerance that never fires (empty
        // PerturbReport) must also leave the factors bitwise identical
        // to the untouched path.
        let tiers: [(&str, SympilerOptions); 3] = [
            ("serial", SympilerOptions { block_lu: BlockLu::Off, ..Default::default() }),
            ("parallel", SympilerOptions {
                n_threads: 3, block_lu: BlockLu::Off, ..Default::default()
            }),
            ("supernodal", SympilerOptions { block_lu: BlockLu::On, ..Default::default() }),
        ];
        for (label, base) in tiers {
            let plain = SympilerLu::compile(&a, &base).unwrap().factor(&a).unwrap();
            let explicit = SympilerLu::compile(&a, &SympilerOptions {
                pivot_perturb: 0.0, ..base.clone()
            }).unwrap().factor(&a).unwrap();
            prop_assert!(plain.perturb_report().is_empty());
            prop_assert!(explicit.perturb_report().is_empty());
            for (x, y) in explicit.l().values().iter().chain(explicit.u().values())
                .zip(plain.l().values().iter().chain(plain.u().values()))
            {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                    "{}: explicit pivot_perturb=0.0 moved bits", label);
            }
            let armed = SympilerLu::compile(&a, &SympilerOptions {
                pivot_perturb: 1e-10, ..base.clone()
            }).unwrap().factor(&a).unwrap();
            if armed.perturb_report().is_empty() {
                for (x, y) in armed.l().values().iter().chain(armed.u().values())
                    .zip(plain.l().values().iter().chain(plain.u().values()))
                {
                    prop_assert_eq!(x.to_bits(), y.to_bits(),
                        "{}: an armed-but-silent tolerance moved bits", label);
                }
            }
        }
    }

    #[test]
    fn pre_pivot_permutations_are_valid_and_zero_free(a in zero_diag_matrix()) {
        for pre_pivot in [PrePivot::Transversal, PrePivot::WeightedMatching] {
            let rowp = sympiler::graph::compute_pre_pivot(&a, pre_pivot)
                .expect("suite-style workloads have a perfect matching")
                .expect("zero diagonals force a non-identity matching");
            prop_assert!(sympiler::sparse::ops::inverse_permutation(&rowp).is_ok());
            let b = sympiler::sparse::ops::permute_rows(&a, &rowp).unwrap();
            prop_assert_eq!(sympiler::sparse::ops::structurally_zero_diagonals(&b), 0);
        }
    }
}
