//! Serving-layer integration tests: the [`PlanCache`] under concurrent
//! mixed-pattern load and eviction pressure, batched factorization
//! against every execution tier, the blocked multi-RHS solve, and the
//! [`FactorService`] end to end — all verified against the direct
//! `compile()` + `factor()` path, bitwise where the tier promises it.

use std::sync::Arc;
use sympiler::prelude::*;
use sympiler::sparse::gen;

/// Same pattern, fresh values — the request-stream shape.
fn perturbed(base: &CscMatrix, k: usize) -> CscMatrix {
    let mut a = base.clone();
    let s = 1.0 + 0.001 * ((k % 13) as f64) + 1e-6 * (k as f64);
    for v in a.values_mut() {
        *v *= s;
    }
    a
}

fn bitwise_eq(a: &LuFactor, b: &LuFactor) -> bool {
    a.l()
        .values()
        .iter()
        .chain(a.u().values())
        .zip(b.l().values().iter().chain(b.u().values()))
        .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn close(a: &LuFactor, b: &LuFactor, tol: f64) -> bool {
    a.l()
        .values()
        .iter()
        .chain(a.u().values())
        .zip(b.l().values().iter().chain(b.u().values()))
        .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs()))
}

/// Many threads hammer one cache with a mix of patterns sized so the
/// working set exceeds the entry bound: hits, misses, recompiles of
/// evicted patterns, and (thanks to `Arc`) plans staying alive in
/// flight after eviction — all while every factor must stay bitwise
/// identical to an uncached compile of the same matrix.
#[test]
fn concurrent_cache_stress_under_eviction_pressure() {
    let patterns: Vec<CscMatrix> = (0..6)
        .map(|k| gen::circuit_unsym(60 + 10 * k, 4, 2, 7 + k as u64))
        .collect();
    let opts = SympilerOptions::default();
    // Room for 3 of the 6 patterns: a steady eviction churn.
    let cache = Arc::new(PlanCache::new(CacheConfig {
        max_entries: 3,
        max_bytes: 0,
    }));

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let patterns = patterns.clone();
            let opts = opts.clone();
            std::thread::spawn(move || {
                let mut ws = LuWorkspace::new();
                for req in 0..40 {
                    let base = &patterns[(t + req) % patterns.len()];
                    let a = perturbed(base, t * 1000 + req);
                    let plan = cache.get_or_compile(&a, &opts).expect("cached compile");
                    let cached = plan.factor_with(&a, &mut ws).expect("cached factor");
                    let direct = SympilerLu::compile(&a, &opts)
                        .expect("direct compile")
                        .factor(&a)
                        .expect("direct factor");
                    assert!(
                        bitwise_eq(&cached, &direct),
                        "thread {t} request {req}: cached factor diverged"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread");
    }

    let stats = cache.stats();
    assert!(
        stats.entries <= 3,
        "entry bound violated: {}",
        stats.entries
    );
    assert_eq!(
        stats.hits + stats.misses,
        8 * 40,
        "every request is a hit or a miss"
    );
    assert!(stats.evictions > 0, "6 patterns through 3 slots must evict");
    assert!(stats.hits > 0, "same-pattern requests must hit");
    // 6 patterns cannot be served by fewer than 6 compiles.
    assert!(stats.misses >= 6);
}

/// The cache is exact, not just hash-keyed: same pattern under
/// different options are distinct plans, and both serve correctly.
#[test]
fn options_are_part_of_the_cache_key() {
    let a = gen::convection_diffusion_2d(12, 12, 2.0, 5);
    let cache = PlanCache::new(CacheConfig::default());
    let serial = SympilerOptions::default();
    let blocked = SympilerOptions {
        block_lu: BlockLu::On,
        ..SympilerOptions::default()
    };
    let p1 = cache.get_or_compile(&a, &serial).expect("serial");
    let p2 = cache.get_or_compile(&a, &blocked).expect("blocked");
    assert!(
        !Arc::ptr_eq(&p1, &p2),
        "distinct options must not share a plan"
    );
    assert_eq!(cache.stats().misses, 2);
    let p1b = cache.get_or_compile(&a, &serial).expect("serial again");
    assert!(Arc::ptr_eq(&p1, &p1b), "same (pattern, options) must hit");
}

/// The amalgamation and equilibration knobs participate in cache
/// identity: plans compiled under differing `relax_fill`,
/// `relax_cols`, or `mc64_scale` have different baked tables (panel
/// layouts, scaling vectors), so the cache must treat each as a
/// distinct key and hit only on an exact option match.
#[test]
fn amalgamation_and_scaling_options_key_the_cache() {
    let a = gen::circuit_unsym(80, 4, 2, 11);
    let cache = PlanCache::new(CacheConfig::default());
    let relaxed = SympilerOptions {
        ordering: Ordering::Colamd,
        block_lu: BlockLu::On,
        ..SympilerOptions::default()
    };
    let strict = SympilerOptions {
        relax_fill: 0.0,
        ..relaxed.clone()
    };
    let narrow = SympilerOptions {
        relax_cols: 4,
        ..relaxed.clone()
    };
    let scaled = SympilerOptions {
        mc64_scale: true,
        ..relaxed.clone()
    };
    let p_rel = cache.get_or_compile(&a, &relaxed).expect("relaxed");
    let p_str = cache.get_or_compile(&a, &strict).expect("strict");
    let p_nar = cache.get_or_compile(&a, &narrow).expect("narrow");
    let p_sca = cache.get_or_compile(&a, &scaled).expect("scaled");
    for (label, other) in [
        ("relax_fill", &p_str),
        ("relax_cols", &p_nar),
        ("mc64_scale", &p_sca),
    ] {
        assert!(
            !Arc::ptr_eq(&p_rel, other),
            "differing {label} must not share a plan"
        );
    }
    assert!(!Arc::ptr_eq(&p_str, &p_nar) && !Arc::ptr_eq(&p_str, &p_sca));
    assert_eq!(cache.stats().misses, 4, "four distinct keys, four compiles");
    assert_eq!(cache.stats().hits, 0);
    // Exact option match is the only thing that hits.
    assert!(Arc::ptr_eq(
        &p_rel,
        &cache.get_or_compile(&a, &relaxed).expect("relaxed again")
    ));
    assert!(Arc::ptr_eq(
        &p_sca,
        &cache.get_or_compile(&a, &scaled).expect("scaled again")
    ));
    assert_eq!(cache.stats().hits, 2);
    assert_eq!(cache.stats().misses, 4);
}

/// The cache's byte accounting sees the execution tier that will
/// actually run: a supernodal plan's resident size is the tier-aware
/// `table_bytes()` — the panel directory, union row lists (padded
/// layouts included), and schedules on top of the scalar plan's
/// tables — and the amalgamation budget changes it (fewer, wider
/// panels store different layouts than the strict partition).
#[test]
fn cached_bytes_account_for_padded_panel_layouts() {
    let a = gen::circuit_unsym(80, 4, 2, 11);
    let relaxed = SympilerOptions {
        ordering: Ordering::Colamd,
        block_lu: BlockLu::On,
        ..SympilerOptions::default()
    };
    let strict = SympilerOptions {
        relax_fill: 0.0,
        ..relaxed.clone()
    };
    let lu_rel = SympilerLu::compile(&a, &relaxed).expect("relaxed compile");
    let lu_str = SympilerLu::compile(&a, &strict).expect("strict compile");
    let sup = lu_rel.supernodal().expect("On compiles the engine");
    assert!(
        sup.padded_zeros() > 0,
        "COLAMD circuit panels must amalgamate with explicit zeros"
    );
    assert!(
        lu_rel.table_bytes() > lu_rel.plan().table_bytes(),
        "the supernodal layout must be charged on top of the scalar tables"
    );
    assert_ne!(
        lu_rel.table_bytes(),
        lu_str.table_bytes(),
        "the amalgamation budget must be visible in the byte accounting"
    );
    let cache = PlanCache::new(CacheConfig::default());
    cache.get_or_compile(&a, &relaxed).expect("cache relaxed");
    assert_eq!(
        cache.stats().bytes,
        lu_rel.table_bytes(),
        "the cache must account the panel layout, not just the scalar plan"
    );
    cache.get_or_compile(&a, &strict).expect("cache strict");
    assert_eq!(
        cache.stats().bytes,
        lu_rel.table_bytes() + lu_str.table_bytes()
    );
}

/// Batched factorization agrees with the one-at-a-time loop on every
/// execution tier: bitwise for the scalar serial and column-parallel
/// tiers (whose batch path runs the same per-lane arithmetic), and to
/// dense-kernel tolerance for the supernodal tier (whose `factor()`
/// itself reassociates sums — the batch path delegates to it).
#[test]
fn factor_batch_agrees_on_all_three_tiers() {
    let base = gen::convection_diffusion_2d(16, 16, 3.0, 9);
    let mats: Vec<CscMatrix> = (0..5).map(|k| perturbed(&base, k)).collect();
    let refs: Vec<&CscMatrix> = mats.iter().collect();

    let tiers = [
        ("serial", SympilerOptions::default(), true),
        (
            "parallel",
            SympilerOptions {
                n_threads: 3,
                ..SympilerOptions::default()
            },
            true,
        ),
        (
            "supernodal",
            SympilerOptions {
                block_lu: BlockLu::On,
                ..SympilerOptions::default()
            },
            true,
        ),
    ];
    for (name, opts, bitwise) in tiers {
        let lu = SympilerLu::compile(&base, &opts).expect("compile");
        let batched = lu.factor_batch(&refs).expect("batch");
        assert_eq!(batched.len(), mats.len());
        for (k, (b, a)) in batched.iter().zip(&mats).enumerate() {
            let single = lu.factor(a).expect("single");
            if bitwise {
                assert!(
                    bitwise_eq(b, &single),
                    "{name} tier: batch[{k}] diverged from factor()"
                );
            } else {
                assert!(close(b, &single, 1e-12), "{name} tier: batch[{k}] off");
            }
        }
    }
}

/// A zero pivot anywhere in the batch aborts the whole call and names
/// the offending matrix; the plan stays reusable afterwards.
#[test]
fn factor_batch_reports_the_failing_matrix() {
    let base = gen::circuit_unsym(50, 4, 2, 3);
    let lu = SympilerLu::compile(&base, &SympilerOptions::default()).expect("compile");
    let good0 = perturbed(&base, 0);
    let mut bad = perturbed(&base, 1);
    // Zero a diagonal entry: structurally present, numerically fatal.
    let diag_pos = (bad.col_ptr()[0]..bad.col_ptr()[1])
        .find(|&p| bad.row_idx()[p] == 0)
        .expect("circuit generator keeps a full diagonal");
    bad.values_mut()[diag_pos] = 0.0;
    let good2 = perturbed(&base, 2);
    let err = lu
        .factor_batch(&[&good0, &bad, &good2])
        .expect_err("zero pivot must fail");
    assert_eq!(err.index, 1, "error must name the batch position: {err}");
    // The plan (and a fresh batch) still works.
    let ok = lu.factor_batch(&[&good0, &good2]).expect("clean batch");
    assert!(bitwise_eq(&ok[0], &lu.factor(&good0).expect("single")));
}

/// Blocked multi-RHS solve is bitwise per-RHS `solve()`.
#[test]
fn solve_batch_is_bitwise_per_rhs() {
    let a = gen::convection_diffusion_2d(14, 14, 2.5, 4);
    let n = a.n_cols();
    let lu = SympilerLu::compile(&a, &SympilerOptions::default()).expect("compile");
    let f = lu.factor(&a).expect("factor");
    let rhs: Vec<Vec<f64>> = (0..7)
        .map(|r| (0..n).map(|i| 0.5 + ((i * 3 + r) % 11) as f64).collect())
        .collect();
    let xs = f.solve_batch(&rhs);
    assert_eq!(xs.len(), rhs.len());
    for (r, x) in xs.iter().enumerate() {
        let want = f.solve(&rhs[r]);
        assert!(
            x.iter().zip(&want).all(|(p, q)| p.to_bits() == q.to_bits()),
            "rhs {r} diverged"
        );
    }
    assert!(f.solve_batch(&Vec::<Vec<f64>>::new()).is_empty());
}

/// End to end: a mixed-pattern request stream through the thread-pool
/// service, every response checked against the direct path.
#[test]
fn service_serves_mixed_patterns_correctly() {
    let patterns: Vec<CscMatrix> = (0..3)
        .map(|k| gen::circuit_unsym(70 + 15 * k, 4, 2, 21 + k as u64))
        .collect();
    let opts = SympilerOptions::default();
    let cache = Arc::new(PlanCache::new(CacheConfig::default()));
    let service = FactorService::new(3, Arc::clone(&cache));

    let requests: Vec<CscMatrix> = (0..24)
        .map(|req| perturbed(&patterns[req % patterns.len()], req))
        .collect();
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|a| {
            let b: Vec<f64> = (0..a.n_cols()).map(|i| 1.0 + (i % 5) as f64).collect();
            service.submit(ServeRequest {
                a: a.clone(),
                opts: opts.clone(),
                rhs: vec![b],
            })
        })
        .collect();
    for (req, t) in tickets.into_iter().enumerate() {
        let resp: ServeResponse = t.wait().expect("served");
        let a = &requests[req];
        let direct = SympilerLu::compile(a, &opts)
            .expect("direct compile")
            .factor(a)
            .expect("direct factor");
        assert!(
            bitwise_eq(&resp.factor, &direct),
            "request {req}: served factor diverged"
        );
        let b: Vec<f64> = (0..a.n_cols()).map(|i| 1.0 + (i % 5) as f64).collect();
        let want = direct.solve(&b);
        assert!(
            resp.solutions[0]
                .iter()
                .zip(&want)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "request {req}: served solution diverged"
        );
    }
    let stats = cache.stats();
    // 3 patterns, 3 workers: at most one racing compile extra each.
    assert!(stats.misses <= 6, "too many compiles: {}", stats.misses);
    assert!(stats.hits >= 18);
}

/// A zero-pivot request surfaces the factorization error through the
/// ticket without poisoning the service for later requests.
#[test]
fn service_propagates_factor_errors() {
    let base = gen::circuit_unsym(40, 4, 2, 5);
    let opts = SympilerOptions::default();
    let service = FactorService::new(2, Arc::new(PlanCache::new(CacheConfig::default())));
    let mut bad = base.clone();
    for v in bad.values_mut() {
        *v = 0.0;
    }
    let err = service
        .submit(ServeRequest {
            a: bad,
            opts: opts.clone(),
            rhs: Vec::new(),
        })
        .wait();
    assert!(err.is_err(), "all-zero matrix must fail to factor");
    let ok = service
        .submit(ServeRequest {
            a: base.clone(),
            opts,
            rhs: Vec::new(),
        })
        .wait();
    assert!(
        ok.is_ok(),
        "service must keep serving after a failed request"
    );
}
