//! Cross-crate integration: the full Sympiler pipeline on every suite
//! problem at test scale — generate, order, compile, factor, solve,
//! verify; plus Matrix Market round-trips and the repeated-values
//! scenario the paper is built around.

use sympiler::prelude::*;
use sympiler::solvers::{SimplicialCholesky, SupernodalCholesky};
use sympiler::sparse::io::{read_matrix_market, write_matrix_market, MmSymmetry};
use sympiler::sparse::suite::{suite, SuiteScale};
use sympiler::sparse::{ops, rhs};

#[test]
fn full_pipeline_on_every_suite_problem() {
    for p in suite(SuiteScale::Test) {
        let (a, _) = sympiler::graph::rcm::rcm_permute(&p.matrix);
        let chol = SympilerCholesky::compile(&a, &SympilerOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let f = chol
            .factor(&a)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let n = a.n_cols();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let x = f.solve(&b);
        let resid = ops::rel_residual_sym_lower(&a, &x, &b);
        assert!(resid < 1e-9, "{}: residual {resid}", p.name);
    }
}

#[test]
fn three_cholesky_engines_agree_on_every_suite_problem() {
    for p in suite(SuiteScale::Test) {
        let (a, _) = sympiler::graph::rcm::rcm_permute(&p.matrix);
        let l_eigen = SimplicialCholesky::analyze(&a).unwrap().factor(&a).unwrap();
        let l_cholmod = SupernodalCholesky::analyze(&a, 64)
            .unwrap()
            .factor(&a)
            .unwrap()
            .to_csc();
        let l_symp = SympilerCholesky::compile(&a, &SympilerOptions::default())
            .unwrap()
            .factor(&a)
            .unwrap()
            .to_csc();
        assert!(l_eigen.same_pattern(&l_cholmod), "{}", p.name);
        assert!(l_eigen.same_pattern(&l_symp), "{}", p.name);
        for ((x, y), z) in l_eigen
            .values()
            .iter()
            .zip(l_cholmod.values())
            .zip(l_symp.values())
        {
            assert!((x - y).abs() < 1e-8, "{}: {x} vs {y}", p.name);
            assert!((x - z).abs() < 1e-8, "{}: {x} vs {z}", p.name);
        }
    }
}

#[test]
fn trisolve_engines_agree_on_factor_patterns() {
    for p in suite(SuiteScale::Test).into_iter().take(6) {
        let (a, _) = sympiler::graph::rcm::rcm_permute(&p.matrix);
        let l = SympilerCholesky::compile(&a, &SympilerOptions::default())
            .unwrap()
            .factor(&a)
            .unwrap()
            .to_csc();
        let b = rhs::rhs_from_column_pattern(&l, l.n_cols() / 3, 9);
        let mut x_ref = b.to_dense();
        sympiler::solvers::trisolve::naive_forward(&l, &mut x_ref);
        let mut ts = SympilerTriSolve::compile(&l, b.indices(), &SympilerOptions::default());
        let x = ts.solve(&b);
        for i in 0..l.n_cols() {
            assert!(
                (x[i] - x_ref[i]).abs() < 1e-9,
                "{}: x[{i}] {} vs {}",
                p.name,
                x[i],
                x_ref[i]
            );
        }
    }
}

#[test]
fn matrix_market_roundtrip_preserves_factorization() {
    let p = &suite(SuiteScale::Test)[4];
    let mut buf = Vec::new();
    write_matrix_market(&mut buf, &p.matrix, MmSymmetry::Symmetric).unwrap();
    let back = read_matrix_market(&buf[..]).unwrap().matrix;
    assert_eq!(back, p.matrix);
    // Factor the round-tripped matrix.
    let chol = SympilerCholesky::compile(&back, &SympilerOptions::default()).unwrap();
    assert!(chol.factor(&back).is_ok());
}

#[test]
fn static_pattern_changing_values_contract() {
    // The core Sympiler premise (§1.2): one compile, many factorizations
    // with the same pattern and different values.
    let p = &suite(SuiteScale::Test)[1];
    let (a0, _) = sympiler::graph::rcm::rcm_permute(&p.matrix);
    let chol = SympilerCholesky::compile(&a0, &SympilerOptions::default()).unwrap();
    let mut a = a0.clone();
    for round in 1..=5 {
        for v in a.values_mut() {
            *v *= 1.0 + 0.1 / round as f64;
        }
        let f = chol.factor(&a).unwrap();
        let l_ref = SimplicialCholesky::analyze(&a).unwrap().factor(&a).unwrap();
        for (x, y) in f.to_csc().values().iter().zip(l_ref.values()) {
            assert!((x - y).abs() < 1e-8, "round {round}");
        }
    }
}

#[test]
fn emitted_c_is_nonempty_and_structured_for_suite() {
    let p = &suite(SuiteScale::Test)[0];
    let (a, _) = sympiler::graph::rcm::rcm_permute(&p.matrix);
    let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).unwrap();
    let c = chol.emit_c();
    assert!(c.contains("blockSet"));
    assert!(c.contains("for (int b = 0; b < blockSetSize; b++)"));
    let l = chol.factor(&a).unwrap().to_csc();
    let b = rhs::rhs_from_column_pattern(&l, 0, 3);
    let ts = SympilerTriSolve::compile(&l, b.indices(), &SympilerOptions::default());
    let c_tri = ts.emit_c();
    assert!(c_tri.contains("trisolve_specialized"));
}

#[test]
fn symbolic_reports_expose_inspection_cost() {
    let p = &suite(SuiteScale::Test)[2];
    let (a, _) = sympiler::graph::rcm::rcm_permute(&p.matrix);
    let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).unwrap();
    let report = chol.report();
    assert!(report.total().as_nanos() > 0);
    assert!(report.size_of("supernodes").unwrap() >= 1);
    assert!(report.size_of("nnz(L)").unwrap() >= a.nnz());
}
