//! Failure-injection tests: every engine must *reject* — not silently
//! corrupt — inputs that violate its contract: pattern swaps with equal
//! nnz, indefinite values, NaN poisoning, malformed storage.

use sympiler::prelude::*;
use sympiler::solvers::cholesky::ichol::IncompleteCholesky0;
use sympiler::solvers::cholesky::ldl::UpLookingLdl;
use sympiler::solvers::cholesky::CholeskyError;
use sympiler::solvers::{SimplicialCholesky, SupernodalCholesky};
use sympiler::sparse::gen;

/// Two SPD matrices with the same n and nnz but different patterns.
fn same_size_different_pattern() -> (CscMatrix, CscMatrix) {
    // Tridiagonal vs "skip-diagonal" (entries at distance 2).
    let n = 12;
    let mut t1 = TripletMatrix::new(n, n);
    let mut t2 = TripletMatrix::new(n, n);
    for j in 0..n {
        t1.push(j, j, 4.0);
        t2.push(j, j, 4.0);
        if j + 1 < n {
            t1.push(j + 1, j, -1.0);
        }
        if j + 2 < n {
            t2.push(j + 2, j, -1.0);
        }
    }
    // Give t1 one extra entry and t2 one extra entry so nnz matches:
    // t1 has n + (n-1), t2 has n + (n-2); add one more to t2.
    t2.push(n - 1, 0, -0.5);
    let a = t1.to_csc().unwrap();
    let b = t2.to_csc().unwrap();
    assert_eq!(a.nnz(), b.nnz(), "test setup: equal nnz");
    (a, b)
}

#[test]
fn pattern_swap_with_equal_nnz_is_rejected_everywhere() {
    let (a, b) = same_size_different_pattern();
    // Sympiler plan.
    let plan = SympilerCholesky::compile(&a, &SympilerOptions::default()).unwrap();
    assert!(plan.factor(&b).is_err(), "CholPlan must reject");
    // Baselines.
    let simp = SimplicialCholesky::analyze(&a).unwrap();
    assert_eq!(simp.factor(&b), Err(CholeskyError::PatternMismatch));
    let sup = SupernodalCholesky::analyze(&a, 0).unwrap();
    assert!(matches!(
        sup.factor(&b),
        Err(CholeskyError::PatternMismatch)
    ));
    let ldl = UpLookingLdl::analyze(&a).unwrap();
    assert!(matches!(
        ldl.factor(&b),
        Err(CholeskyError::PatternMismatch)
    ));
    let ic = IncompleteCholesky0::analyze(&a).unwrap();
    assert!(matches!(ic.factor(&b), Err(CholeskyError::PatternMismatch)));
}

#[test]
fn nan_values_are_rejected_not_propagated() {
    let mut a = gen::random_spd(20, 3, 1);
    let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).unwrap();
    // Poison a diagonal entry with NaN.
    if let Some(p) = a.find(5, 5) {
        a.values_mut()[p] = f64::NAN;
    }
    match chol.factor(&a) {
        Err(_) => {}
        Ok(f) => {
            // If the NaN lands after the affected column, the factor
            // may complete — but it must not silently produce a clean
            // factor: reconstruct and check for NaN.
            assert!(
                f.to_csc().values().iter().any(|v| v.is_nan()),
                "NaN must surface as an error or in the factor, not vanish"
            );
        }
    }
}

#[test]
fn indefinite_matrices_rejected_by_all_engines() {
    // Indefinite at the last pivot.
    let mut t = TripletMatrix::new(6, 6);
    for j in 0..6 {
        t.push(j, j, if j == 5 { 0.1 } else { 10.0 });
    }
    for j in 0..5 {
        t.push(5, j, 2.0);
    }
    let a = t.to_csc().unwrap();
    assert!(SimplicialCholesky::analyze(&a).unwrap().factor(&a).is_err());
    assert!(SupernodalCholesky::analyze(&a, 0)
        .unwrap()
        .factor(&a)
        .is_err());
    assert!(SympilerCholesky::compile(&a, &SympilerOptions::default())
        .unwrap()
        .factor(&a)
        .is_err());
    assert!(UpLookingLdl::analyze(&a).unwrap().factor(&a).is_err());
}

#[test]
fn malformed_csc_cannot_be_constructed() {
    // Unsorted rows.
    assert!(CscMatrix::try_new(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
    // Duplicate rows.
    assert!(CscMatrix::try_new(3, 1, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
    // Pointer beyond nnz.
    assert!(CscMatrix::try_new(3, 1, vec![0, 5], vec![0], vec![1.0]).is_err());
}

#[test]
fn trisolve_plan_requires_lower_triangular_with_diagonal() {
    // Missing diagonal in one column must be caught at plan build.
    let mut t = TripletMatrix::new(3, 3);
    t.push(0, 0, 1.0);
    t.push(2, 1, 1.0); // column 1 has no diagonal
    t.push(2, 2, 1.0);
    let l = t.to_csc().unwrap();
    let result = std::panic::catch_unwind(|| {
        SympilerTriSolve::compile(&l, &[0], &SympilerOptions::default())
    });
    assert!(result.is_err(), "missing diagonal must be rejected");
}

#[test]
fn rank_downdate_overshoot_fails_cleanly_and_factor_reusable() {
    use sympiler::solvers::cholesky::updown::rank_update;
    let a = gen::banded_spd(15, 2, 4);
    let chol = SimplicialCholesky::analyze(&a).unwrap();
    let mut l = chol.factor(&a).unwrap();
    let parent = sympiler::graph::etree(&a);
    // Overshoot: a downdate that destroys positive definiteness.
    let mut w = vec![0.0; 15];
    for (i, v) in l.col_iter(0) {
        w[i] = 50.0 * v;
    }
    assert!(rank_update(&mut l, &parent, &mut w, -1.0).is_err());
    // A fresh factor still works (the failed update mutated `l`, which
    // is why the API takes &mut and documents in-place semantics —
    // recompute after failure).
    let l2 = chol.factor(&a).unwrap();
    assert!(sympiler::solvers::verify::reconstruction_error(&a, &l2) < 1e-10);
}

#[test]
fn mm_io_rejects_truncated_and_oversized_files() {
    use sympiler::sparse::io::read_matrix_market;
    // Declared 3 entries, provides 1.
    let trunc = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
    assert!(read_matrix_market(trunc.as_bytes()).is_err());
    // Declared 1 entry, provides 2.
    let extra = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 1.0\n";
    assert!(read_matrix_market(extra.as_bytes()).is_err());
    // Non-numeric value.
    let junk = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n";
    assert!(read_matrix_market(junk.as_bytes()).is_err());
}
