//! Cross-crate coverage of the parallel LU numeric phase and the
//! generalized DAG scheduler: levels of the column elimination DAG
//! checked against a reference topological longest-path computation on
//! the full unsymmetric suite, and the parallel plan's factors checked
//! bitwise identical across 1/2/4 threads and to 1e-10 against both the
//! serial plan and the coupled GPLU baseline.

use sympiler::graph::levels::{balanced_partition, lu_column_levels};
use sympiler::prelude::*;
use sympiler::sparse::suite::{unsym_suite, SuiteScale};

/// Reference longest-path levels: Bellman–Ford-style relaxation over
/// the explicit edge list, O(V * E) but independent of the Kahn-based
/// production code path.
fn reference_levels(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut level = vec![0usize; n];
    loop {
        let mut changed = false;
        for &(u, v) in edges {
            if level[v] < level[u] + 1 {
                level[v] = level[u] + 1;
                changed = true;
            }
        }
        if !changed {
            return level;
        }
    }
}

#[test]
fn dag_levels_match_reference_on_unsym_suite() {
    for p in unsym_suite(SuiteScale::Test) {
        let sym = sympiler::graph::lu_symbolic(&p.matrix);
        let ls = lu_column_levels(&sym);
        let n = p.n();
        // The elimination DAG: one edge per scheduled update.
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|j| sym.reach(j).iter().map(move |&k| (k, j)))
            .collect();
        assert_eq!(
            ls.level_of,
            reference_levels(n, &edges),
            "{}: levels must equal topological longest paths",
            p.name
        );
        // Levels partition the columns and respect every dependence.
        let total: usize = ls.levels.iter().map(Vec::len).sum();
        assert_eq!(total, n, "{}", p.name);
        for &(k, j) in &edges {
            assert!(ls.level_of[k] < ls.level_of[j], "{}: {k}->{j}", p.name);
        }
        // Cost-balanced chunking of the widest level stays a partition.
        let costs = sym.per_column_flops();
        let widest = ls.levels.iter().max_by_key(|l| l.len()).unwrap();
        let level_costs: Vec<u64> = widest.iter().map(|&j| costs[j]).collect();
        let bounds = balanced_partition(&level_costs, 4);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), widest.len());
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn parallel_lu_identical_factors_across_thread_counts() {
    for p in unsym_suite(SuiteScale::Test) {
        // Zero-diagonal problems factor under the weighted-matching
        // pre-pivot (numerically strict: it restores a large
        // diagonal) — the same baseline contract then applies to the
        // pre-pivoted system.
        let pre_pivot = if p.zero_diag {
            PrePivot::WeightedMatching
        } else {
            PrePivot::Off
        };
        let baseline =
            GpLu::factor_prepivoted(&p.matrix, Pivoting::None, pre_pivot, Ordering::Natural)
                .expect("baseline")
                .factors;
        let mut factors = Vec::new();
        for threads in [1usize, 2, 4] {
            let opts = SympilerOptions {
                n_threads: threads,
                pre_pivot,
                ..Default::default()
            };
            let lu = SympilerLu::compile(&p.matrix, &opts).expect("compile");
            assert_eq!(lu.n_threads(), threads);
            let f = lu.factor(&p.matrix).expect("factor");
            // Against the coupled runtime baseline: same pattern,
            // values to 1e-10 (the subsystem's acceptance contract).
            assert!(f.l().same_pattern(&baseline.l), "{}", p.name);
            assert!(f.u().same_pattern(&baseline.u), "{}", p.name);
            for (x, y) in f
                .l()
                .values()
                .iter()
                .chain(f.u().values())
                .zip(baseline.l.values().iter().chain(baseline.u.values()))
            {
                assert!(
                    (x - y).abs() < 1e-10,
                    "{} @ {threads} threads: baseline drift",
                    p.name
                );
            }
            factors.push(f);
        }
        // Across thread counts: bitwise identical, not just close.
        let f1 = &factors[0];
        for (t, f) in [(2usize, &factors[1]), (4, &factors[2])] {
            for (x, y) in f1
                .l()
                .values()
                .iter()
                .chain(f1.u().values())
                .zip(f.l().values().iter().chain(f.u().values()))
            {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{}: {t} threads changed bits",
                    p.name
                );
            }
        }
    }
}

#[test]
fn parallel_lu_repeated_numeric_factorizations() {
    // The paper's core scenario — one compile, many numeric
    // factorizations with changing values — through the parallel
    // executor, solved end to end each round.
    let p = &unsym_suite(SuiteScale::Test)[2]; // circuit_small_u
    let opts = SympilerOptions {
        n_threads: 4,
        ..Default::default()
    };
    let lu = SympilerLu::compile(&p.matrix, &opts).unwrap();
    let mut a = p.matrix.clone();
    let n = p.n();
    for round in 1..=3 {
        for v in a.values_mut() {
            *v *= 1.0 + 0.03 / round as f64;
        }
        let f = lu.factor(&a).unwrap();
        let base = GpLu::factor(&a, Pivoting::None).unwrap();
        for (x, y) in f.u().values().iter().zip(base.u.values()) {
            assert!((x - y).abs() < 1e-9, "round {round}");
        }
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let x = f.solve(&b);
        assert!(
            sympiler::sparse::ops::rel_residual(&a, &x, &b) < 1e-10,
            "round {round}"
        );
    }
}
