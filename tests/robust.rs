//! Integration tests for the robustness ladder and serving-layer
//! fault tolerance: static pivot perturbation across all three LU
//! execution tiers, per-lane batch fault reporting, the
//! `RobustLu` recovery driver, error-surface conformance
//! (`std::error::Error` + `source()` chaining), and deterministic
//! worker-fault injection against the `FactorService` pool.

use std::sync::Arc;
use std::time::Duration;
use sympiler::core::serve::fault;
use sympiler::prelude::*;
use sympiler::sparse::faults::{tiny_diagonals, zero_diagonals};
use sympiler::sparse::gen;
use sympiler::sparse::CscMatrix;

/// Healthy circuit matrix used across the tier tests.
fn healthy() -> CscMatrix {
    gen::circuit_unsym(120, 4, 2, 31)
}

/// The same matrix with its first diagonal value zeroed — column 0's
/// pivot takes no elimination updates, so the zero survives into the
/// pivot position and statically pivoted LU must either perturb or
/// fail.
fn zeroed_first_pivot() -> CscMatrix {
    let (faulted, hit) = zero_diagonals(&healthy(), &[0]);
    assert_eq!(hit, vec![0]);
    faulted
}

fn options(tier: &str) -> SympilerOptions {
    match tier {
        "serial" => SympilerOptions {
            block_lu: BlockLu::Off,
            ..Default::default()
        },
        "parallel" => SympilerOptions {
            n_threads: 4,
            block_lu: BlockLu::Off,
            ..Default::default()
        },
        "supernodal" => SympilerOptions {
            block_lu: BlockLu::On,
            ..Default::default()
        },
        _ => unreachable!(),
    }
}

// --- Layer 1: static pivot perturbation, all three tiers -----------

#[test]
fn zero_pivot_fails_every_tier_without_perturbation() {
    let a = zeroed_first_pivot();
    for tier in ["serial", "parallel", "supernodal"] {
        let lu = SympilerLu::compile(&a, &options(tier)).unwrap();
        match lu.factor(&a) {
            Err(e) => assert!(
                format!("{e}").contains("pivot"),
                "{tier}: error must name the pivot: {e}"
            ),
            Ok(_) => panic!("{tier}: exact-zero pivot must fail with perturbation off"),
        }
    }
}

#[test]
fn perturbation_unblocks_every_tier_and_reports_the_column() {
    let a = zeroed_first_pivot();
    for tier in ["serial", "parallel", "supernodal"] {
        let opts = SympilerOptions {
            pivot_perturb: 1e-8,
            ..options(tier)
        };
        let lu = SympilerLu::compile(&a, &opts).unwrap();
        let f = lu
            .factor(&a)
            .unwrap_or_else(|e| panic!("{tier}: perturbed factor failed: {e}"));
        let report = f.perturb_report();
        assert!(
            report.columns.contains(&0),
            "{tier}: perturbed columns {:?} must include the zeroed pivot",
            report.columns
        );
        assert!(report.threshold > 0.0, "{tier}: threshold must be recorded");
        // The perturbed factor is a usable preconditioner: refinement
        // against the true matrix reaches the berr contract.
        let b: Vec<f64> = (0..a.n_cols()).map(|i| 1.0 + (i % 7) as f64).collect();
        let (_, rep) = f.solve_refined(&a, &b, 1e-12, 10);
        assert!(
            rep.converged && rep.final_berr <= 1e-12,
            "{tier}: refined berr {:.3e} misses the contract",
            rep.final_berr
        );
    }
}

#[test]
fn tiny_pivots_below_threshold_are_perturbed_in_every_tier() {
    let base = healthy();
    let (a, hit) = tiny_diagonals(&base, &[0], 1e-300);
    assert_eq!(hit, vec![0]);
    for tier in ["serial", "parallel", "supernodal"] {
        let opts = SympilerOptions {
            pivot_perturb: 1e-8,
            ..options(tier)
        };
        let lu = SympilerLu::compile(&a, &opts).unwrap();
        let f = lu.factor(&a).unwrap();
        assert!(
            f.perturb_report().columns.contains(&0),
            "{tier}: 1e-300 pivot sits far below tol*max|A| and must be caught"
        );
    }
}

#[test]
fn perturbation_off_is_bitwise_identical_across_tiers() {
    // pivot_perturb == 0.0 (the default) must leave every tier's
    // factor bitwise untouched: the guard `|pivot| < 0.0` can never
    // fire on a non-negative magnitude.
    let a = healthy();
    for tier in ["serial", "parallel", "supernodal"] {
        let plain = SympilerLu::compile(&a, &options(tier)).unwrap();
        let explicit = SympilerLu::compile(
            &a,
            &SympilerOptions {
                pivot_perturb: 0.0,
                ..options(tier)
            },
        )
        .unwrap();
        let f0 = plain.factor(&a).unwrap();
        let f1 = explicit.factor(&a).unwrap();
        assert!(f0.perturb_report().is_empty() && f1.perturb_report().is_empty());
        let same = f0
            .l()
            .values()
            .iter()
            .chain(f0.u().values())
            .zip(f1.l().values().iter().chain(f1.u().values()))
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{tier}: perturbation-off factors diverged bitwise");
    }
}

// --- factor_batch: per-lane faults ---------------------------------

#[test]
fn batch_reports_the_faulted_lane_index() {
    let base = healthy();
    let bad = zeroed_first_pivot();
    let mats = [&base, &bad, &base];
    let lu = SympilerLu::compile(&base, &SympilerOptions::default()).unwrap();
    let err = lu.factor_batch(&mats).expect_err("lane 1 must fail");
    assert_eq!(err.index, 1, "the faulted lane, not the batch, is named");
    assert!(
        format!("{err}").contains("pivot"),
        "batch error must carry the lane's cause: {err}"
    );
    // Error chaining: the per-lane cause is reachable via source().
    let src = std::error::Error::source(&err).expect("BatchError chains its cause");
    assert!(format!("{src}").contains("pivot"));
}

#[test]
fn batch_perturbation_records_faults_per_lane() {
    let base = healthy();
    let bad = zeroed_first_pivot();
    let mats = [&base, &bad, &base];
    let lu = SympilerLu::compile(
        &base,
        &SympilerOptions {
            pivot_perturb: 1e-8,
            ..Default::default()
        },
    )
    .unwrap();
    let factors = lu
        .factor_batch(&mats)
        .expect("perturbation unblocks lane 1");
    assert!(factors[0].perturb_report().is_empty(), "lane 0 is healthy");
    assert!(
        factors[1].perturb_report().columns.contains(&0),
        "lane 1's zeroed pivot must be recorded on lane 1 only"
    );
    assert!(factors[2].perturb_report().is_empty(), "lane 2 is healthy");
    // Healthy lanes stay bitwise identical to a solo factorization.
    let solo = lu.factor(&base).unwrap();
    let same = factors[0]
        .l()
        .values()
        .iter()
        .chain(factors[0].u().values())
        .zip(solo.l().values().iter().chain(solo.u().values()))
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(
        same,
        "a faulted sibling lane must not disturb healthy lanes"
    );
}

// --- Layer 3: the recovery ladder ----------------------------------

#[test]
fn ladder_recovers_a_zeroed_pivot_through_the_baseline() {
    let a = healthy();
    let bad = zeroed_first_pivot();
    let robust = RobustLu::compile(&a, &SympilerOptions::default()).unwrap();
    let b: Vec<f64> = (0..a.n_cols()).map(|i| 1.0 + (i % 5) as f64).collect();
    let r = robust.solve(&bad, &b).expect("ladder must recover");
    assert_eq!(
        r.rung,
        Rung::Refactor,
        "an exact-zero pivot skips to the baseline"
    );
    assert!(r.berr <= 1e-12);
    assert!(
        !r.trail.is_empty(),
        "the diagnostic trail records the failed rungs"
    );
}

#[test]
fn recovery_error_chains_its_cause() {
    let a = healthy();
    let bad = zeroed_first_pivot();
    let opts = SympilerOptions {
        recovery: RecoveryPolicy {
            allow_refactor: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let robust = RobustLu::compile(&a, &opts).unwrap();
    let b = vec![1.0; a.n_cols()];
    let err = robust
        .solve(&bad, &b)
        .expect_err("no baseline, no recovery");
    let src = std::error::Error::source(&err).expect("RecoveryError chains the cause");
    assert!(
        format!("{src}").contains("pivot"),
        "the root cause survives the ladder: {src}"
    );
    assert!(
        format!("{err}").contains("disabled by policy"),
        "the trail must mention the disabled rung: {err}"
    );
}

// --- Serving layer: injected worker faults -------------------------

/// The fault-arming statics are process-global, and the test harness
/// runs tests on concurrent threads: without serialization, one
/// test's armed fault could be consumed by another test's worker.
/// Every test that creates a `FactorService` takes this lock.
static SERVICE_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn service_lock() -> std::sync::MutexGuard<'static, ()> {
    SERVICE_TESTS.lock().unwrap_or_else(|e| e.into_inner())
}

fn service_request(a: &CscMatrix) -> ServeRequest {
    ServeRequest {
        a: a.clone(),
        opts: SympilerOptions::default(),
        rhs: Vec::new(),
    }
}

/// Regression test for the satellite fix: a worker dying before it
/// replies must resolve the ticket with a typed error, never hang it.
#[test]
fn ticket_resolves_when_its_worker_dies() {
    let _serial = service_lock();
    let _quiet = QuietPanics::install();
    let a = healthy();
    let service = FactorService::new(1, Arc::new(PlanCache::new(CacheConfig::default())));
    service.call(service_request(&a)).expect("warmup");
    fault::arm_worker_deaths(1);
    let t = service.submit(service_request(&a));
    match t.wait() {
        Err(ServeError::Disconnected) => {}
        other => panic!("dead worker must yield Disconnected, got {:?}", other.err()),
    }
    fault::disarm();
    // The pool respawns the dead worker on the next submit.
    service
        .call(service_request(&a))
        .expect("pool must keep serving");
    assert_eq!(service.n_workers(), 1);
}

#[test]
fn worker_panic_is_isolated_and_typed() {
    let _serial = service_lock();
    let _quiet = QuietPanics::install();
    let a = healthy();
    let service = FactorService::new(2, Arc::new(PlanCache::new(CacheConfig::default())));
    service.call(service_request(&a)).expect("warmup");
    fault::arm_worker_panics(1);
    match service.call(service_request(&a)) {
        Err(ServeError::WorkerPanic { detail }) => {
            assert!(
                detail.contains("injected"),
                "panic payload survives: {detail}"
            )
        }
        other => panic!(
            "armed panic must surface as WorkerPanic, got {:?}",
            other.err()
        ),
    }
    fault::disarm();
    service
        .call(service_request(&a))
        .expect("panicking worker must survive");
}

#[test]
fn wait_timeout_bounds_the_wait_and_delivers_in_time() {
    let _serial = service_lock();
    let a = healthy();
    let service = FactorService::new(1, Arc::new(PlanCache::new(CacheConfig::default())));
    let t = service.submit(service_request(&a));
    match t.wait_timeout(Duration::from_secs(30)) {
        Ok(_) => {}
        Err(e) => panic!("healthy request within a generous timeout: {e}"),
    }
}

#[test]
fn serve_escalation_repairs_a_zeroed_pivot_request() {
    let _serial = service_lock();
    let _quiet = QuietPanics::install();
    let a = healthy();
    let bad = zeroed_first_pivot();
    let service = FactorService::new(1, Arc::new(PlanCache::new(CacheConfig::default())));
    let b: Vec<f64> = (0..a.n_cols()).map(|i| 1.0 + (i % 5) as f64).collect();
    // Without escalation the zeroed pivot is a hard error.
    let plain = service.call(ServeRequest {
        a: bad.clone(),
        opts: SympilerOptions::default(),
        rhs: vec![b.clone()],
    });
    assert!(
        matches!(plain, Err(ServeError::Plan(_))),
        "got {:?}",
        plain.err()
    );
    // With escalation the request retries through perturbation +
    // refinement and returns verified solutions.
    let opts = SympilerOptions {
        recovery: RecoveryPolicy {
            serve_escalate: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let resp = service
        .call(ServeRequest {
            a: bad.clone(),
            opts,
            rhs: vec![b.clone()],
        })
        .expect("escalation must repair the request");
    // The escalated solution solves the *faulted* system to the berr
    // contract (componentwise backward error via the refined solve).
    let x = &resp.solutions[0];
    let mut ax = vec![0.0; bad.n_cols()];
    sympiler::sparse::ops::spmv(&bad, x, &mut ax);
    let resid: f64 = ax
        .iter()
        .zip(&b)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0, f64::max);
    let scale: f64 = b.iter().map(|v| v.abs()).fold(0.0, f64::max);
    assert!(
        resid <= 1e-9 * scale,
        "escalated solution residual {resid:.3e} too large"
    );
}

/// Silences the default panic hook for the duration of a test that
/// *expects* injected panics, restoring it on drop. Hooks are
/// process-global, so the affected tests each install their own guard
/// (overlap between threads is harmless: the hook is quiet either
/// way, and the last drop restores the default).
struct QuietPanics;

impl QuietPanics {
    fn install() -> Self {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}
