//! Golden test: the paper's Figure 5 Cholesky example — a 10x10 SPD
//! matrix `A`, its filled factor `L`, the elimination tree `T`, and the
//! supernode grouping.

use sympiler::prelude::*;
use sympiler::solvers::SimplicialCholesky;

/// The Figure 5 matrix (see `sympiler-graph`'s etree tests): a 10x10
/// SPD pattern whose factor develops fill-in and whose etree is a
/// single tree rooted at node 10 with the chain 8 -> 9 -> 10 at the
/// top.
fn fig5_a() -> CscMatrix {
    let lower_1based: &[(usize, usize)] = &[
        (2, 1),
        (6, 1),
        (10, 1),
        (5, 2),
        (7, 2),
        (6, 3),
        (8, 3),
        (9, 3),
        (7, 4),
        (9, 4),
        (10, 4),
        (6, 5),
        (9, 5),
        (8, 6),
        (9, 7),
        (10, 8),
        (9, 8),
    ];
    let mut t = TripletMatrix::new(10, 10);
    for j in 0..10 {
        t.push(j, j, 10.0);
    }
    for &(i, j) in lower_1based {
        t.push(i - 1, j - 1, -1.0);
    }
    t.to_csc().unwrap()
}

#[test]
fn etree_shape_matches_figure() {
    let a = fig5_a();
    let parent = sympiler::graph::etree(&a);
    const NONE: usize = usize::MAX;
    assert_eq!(parent[9], NONE, "node 10 (1-based) is the root");
    assert_eq!(parent[8], 9, "9 -> 10");
    assert_eq!(parent[7], 8, "8 -> 9");
    // Every parent is the first sub-diagonal nonzero of the factor.
    let l = SimplicialCholesky::analyze(&a).unwrap().factor(&a).unwrap();
    for j in 0..9 {
        let below: Vec<usize> = l.col_rows(j).iter().copied().filter(|&i| i > j).collect();
        match below.first() {
            Some(&first) => assert_eq!(parent[j], first, "parent[{j}]"),
            None => assert_eq!(parent[j], NONE),
        }
    }
}

#[test]
fn factor_has_fill_in_like_the_figure() {
    // Figure 5 highlights fill-in entries in L (red bullets): entries
    // of L that are not in A. The factor must strictly contain A's
    // pattern.
    let a = fig5_a();
    let sym = sympiler::graph::symbolic_cholesky(&a);
    assert!(
        sym.l_nnz() > a.nnz(),
        "the example must produce fill-in ({} vs {})",
        sym.l_nnz(),
        a.nnz()
    );
    // Every entry of A's lower pattern is in L.
    for j in 0..10 {
        for &i in a.col_rows(j) {
            assert!(sym.col_pattern(j).contains(&i));
        }
    }
}

#[test]
fn trailing_chain_forms_a_supernode() {
    // Figure 5 colors nodes {8, 9, 10} (1-based) as one supernode: the
    // top chain of the etree with nested patterns.
    let a = fig5_a();
    let sym = sympiler::graph::symbolic_cholesky(&a);
    let part = sympiler::graph::supernodes_cholesky(&sym, 0);
    let s8 = part.col_to_super[7];
    let s9 = part.col_to_super[8];
    let s10 = part.col_to_super[9];
    assert_eq!(s8, s9, "columns 8 and 9 (1-based) share a supernode");
    assert_eq!(s9, s10, "columns 9 and 10 (1-based) share a supernode");
}

#[test]
fn supernodal_and_plan_factors_match_simplicial() {
    let a = fig5_a();
    let l_ref = SimplicialCholesky::analyze(&a).unwrap().factor(&a).unwrap();
    let l_sup = sympiler::solvers::SupernodalCholesky::analyze(&a, 0)
        .unwrap()
        .factor(&a)
        .unwrap()
        .to_csc();
    let l_plan = SympilerCholesky::compile(&a, &SympilerOptions::default())
        .unwrap()
        .factor(&a)
        .unwrap()
        .to_csc();
    assert!(l_ref.same_pattern(&l_sup));
    assert!(l_ref.same_pattern(&l_plan));
    for ((x, y), z) in l_ref
        .values()
        .iter()
        .zip(l_sup.values())
        .zip(l_plan.values())
    {
        assert!((x - y).abs() < 1e-12);
        assert!((x - z).abs() < 1e-12);
    }
}

#[test]
fn prune_sets_match_update_dependencies() {
    // Figure 4's PruneSet for column k is the row pattern of row k: the
    // columns whose updates column k consumes. Validate against the
    // factored values: L[k,j] != 0 exactly for j in the prune set.
    let a = fig5_a();
    let sym = sympiler::graph::symbolic_cholesky(&a);
    let l = SimplicialCholesky::analyze(&a).unwrap().factor(&a).unwrap();
    for k in 0..10 {
        for &j in sym.row_pattern(k) {
            assert!(
                l.find(k, j).is_some(),
                "prune set of row {k} contains {j} but L[{k},{j}] is not stored"
            );
        }
    }
}
