//! Integration tests for the supernodal (VS-Block) LU tier: panel
//! detection quality, agreement with the serial plan across the whole
//! unsymmetric suite under every ordering, the `block_lu` knob, panel
//! DAG parallel execution, and sparse-RHS solves through factors from
//! every tier.

use sympiler::prelude::*;
use sympiler::sparse::suite::{unsym_suite, SuiteScale};
use sympiler::sparse::{ops, SparseVec};

/// Serial-vs-supernodal agreement bound: dense kernels reassociate the
/// update sums, nothing more.
const TOL: f64 = 1e-12;

fn assert_factors_close(a: &LuFactor, b: &LuFactor, what: &str) {
    assert!(a.l().same_pattern(b.l()), "{what}: L pattern");
    assert!(a.u().same_pattern(b.u()), "{what}: U pattern");
    for (x, y) in a.l().values().iter().zip(b.l().values()) {
        assert!(
            (x - y).abs() <= TOL * (1.0 + y.abs()),
            "{what}: L value {x} vs {y}"
        );
    }
    for (x, y) in a.u().values().iter().zip(b.u().values()) {
        assert!(
            (x - y).abs() <= TOL * (1.0 + y.abs()),
            "{what}: U value {x} vs {y}"
        );
    }
}

#[test]
fn supernodal_matches_serial_across_suite_and_orderings() {
    // The satellite contract: supernodal factors comparable to the
    // serial plan to ≤ 1e-12 across the unsym suite × all orderings.
    for p in unsym_suite(SuiteScale::Test) {
        for ordering in Ordering::ALL {
            // Zero-diagonal problems ride the weighted-matching
            // pre-pivot (restores a dominant diagonal, so the strict
            // serial-vs-supernodal tolerance still applies).
            let pre_pivot = if p.zero_diag {
                PrePivot::WeightedMatching
            } else {
                PrePivot::Off
            };
            let serial = SympilerLu::compile(
                &p.matrix,
                &SympilerOptions {
                    ordering,
                    pre_pivot,
                    block_lu: BlockLu::Off,
                    ..Default::default()
                },
            )
            .unwrap();
            let sup = SympilerLu::compile(
                &p.matrix,
                &SympilerOptions {
                    ordering,
                    pre_pivot,
                    block_lu: BlockLu::On,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(sup.is_supernodal() && !serial.is_supernodal());
            let f_serial = serial.factor(&p.matrix).unwrap();
            let f_sup = sup.factor(&p.matrix).unwrap();
            assert_factors_close(
                &f_sup,
                &f_serial,
                &format!("{} under {}", p.name, ordering.label()),
            );
            // Panel statistics are well-formed.
            let plan = sup.supernodal().unwrap();
            assert!(plan.mean_panel_width() >= 1.0);
            assert!(plan.dense_flop_share() >= 0.0 && plan.dense_flop_share() <= 1.0);
            let widths: usize = (0..plan.n_panels())
                .map(|s| plan.partition().width(s))
                .sum();
            assert_eq!(widths, p.matrix.n_cols(), "panels partition the columns");
        }
    }
}

#[test]
fn suite_blocks_on_every_problem() {
    // Every suite problem must produce at least one wide panel — the
    // engine has real dense work on all of them (the lu_compare
    // numbers rest on this).
    for p in unsym_suite(SuiteScale::Test) {
        let sup = SympilerLu::compile(
            &p.matrix,
            &SympilerOptions {
                block_lu: BlockLu::On,
                ..Default::default()
            },
        )
        .unwrap();
        let plan = sup.supernodal().unwrap();
        assert!(plan.n_wide_panels() > 0, "{} never blocked", p.name);
        assert!(plan.mean_panel_width() > 1.0, "{}", p.name);
    }
}

#[test]
fn colamd_circuit_panels_stay_wide() {
    // The acceptance bar: with the default relaxed-amalgamation budget
    // (`relax_fill = 0.3`, graded for narrow merges), COLAMD-ordered
    // circuit problems keep mean panel width ≥ 2.5 — the dense kernels
    // get real blocks even under the fill-reducing ordering — while
    // the strict-nesting partition (`relax_fill = 0`) stays available
    // and at least blocks.
    for p in unsym_suite(SuiteScale::Test) {
        if p.family != "circuit-unsym" {
            continue;
        }
        let sup = SympilerLu::compile(
            &p.matrix,
            &SympilerOptions {
                ordering: Ordering::Colamd,
                block_lu: BlockLu::On,
                ..Default::default()
            },
        )
        .unwrap();
        let plan = sup.supernodal().unwrap();
        assert!(
            plan.mean_panel_width() >= 2.5,
            "{}: colamd mean panel width {} below the amalgamation floor",
            p.name,
            plan.mean_panel_width()
        );
        assert!(
            plan.dense_flop_share() > 0.5,
            "{}: dense kernels should dominate circuit factorizations",
            p.name
        );
        let strict = SympilerLu::compile(
            &p.matrix,
            &SympilerOptions {
                ordering: Ordering::Colamd,
                block_lu: BlockLu::On,
                relax_fill: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let strict_plan = strict.supernodal().unwrap();
        assert_eq!(strict_plan.padded_zeros(), 0);
        assert!(
            plan.mean_panel_width() > strict_plan.mean_panel_width(),
            "{}: the relaxed budget must widen panels over strict nesting",
            p.name
        );
    }
}

#[test]
fn max_panel_knob_caps_widths_and_stays_correct() {
    let p = &unsym_suite(SuiteScale::Test)[2]; // circuit_small_u
    let mut reference: Option<LuFactor> = None;
    for max_panel in [2usize, 8, 0] {
        let sup = SympilerLu::compile(
            &p.matrix,
            &SympilerOptions {
                block_lu: BlockLu::On,
                max_panel,
                ..Default::default()
            },
        )
        .unwrap();
        let plan = sup.supernodal().unwrap();
        if max_panel > 0 {
            assert!(plan.max_panel_width() <= max_panel, "cap {max_panel}");
        }
        let f = sup.factor(&p.matrix).unwrap();
        match &reference {
            None => reference = Some(f),
            Some(r) => assert_factors_close(&f, r, &format!("cap {max_panel}")),
        }
    }
}

#[test]
fn panel_parallel_execution_is_deterministic_and_correct() {
    let p = &unsym_suite(SuiteScale::Test)[3]; // circuit_rails_u
    let opts1 = SympilerOptions {
        ordering: Ordering::Colamd,
        block_lu: BlockLu::On,
        ..Default::default()
    };
    let one = SympilerLu::compile(&p.matrix, &opts1).unwrap();
    let f1 = one.factor(&p.matrix).unwrap();
    for threads in [2usize, 4] {
        let par = SympilerLu::compile(
            &p.matrix,
            &SympilerOptions {
                n_threads: threads,
                ..opts1.clone()
            },
        )
        .unwrap();
        assert!(par.is_supernodal());
        assert_eq!(par.n_threads(), threads);
        let fp = par.factor(&p.matrix).unwrap();
        // Panels run fixed operation sequences: thread count must not
        // change a single bit.
        for (x, y) in f1
            .l()
            .values()
            .iter()
            .chain(f1.u().values())
            .zip(fp.l().values().iter().chain(fp.u().values()))
        {
            assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads");
        }
    }
}

#[test]
fn sparse_rhs_solves_agree_with_dense_across_tiers() {
    let p = &unsym_suite(SuiteScale::Test)[0]; // convdiff_mild_u
    let n = p.matrix.n_cols();
    let idx: Vec<usize> = (0..n).filter(|i| i % 41 == 3).collect();
    let vals: Vec<f64> = idx.iter().map(|&i| 1.0 + (i % 3) as f64).collect();
    let b = SparseVec::try_new(n, idx, vals).unwrap();
    for (label, opts) in [
        (
            "serial",
            SympilerOptions {
                block_lu: BlockLu::Off,
                ..Default::default()
            },
        ),
        (
            "supernodal+colamd",
            SympilerOptions {
                ordering: Ordering::Colamd,
                block_lu: BlockLu::On,
                ..Default::default()
            },
        ),
    ] {
        let lu = SympilerLu::compile(&p.matrix, &opts).unwrap();
        let f = lu.factor(&p.matrix).unwrap();
        let xs = f.solve_sparse(&b);
        let xd = f.solve(&b.to_dense());
        let xs_dense = xs.to_dense();
        for i in 0..n {
            assert!(
                (xs_dense[i] - xd[i]).abs() < 1e-11,
                "{label}: row {i}: {} vs {}",
                xs_dense[i],
                xd[i]
            );
        }
        // And the sparse solve answers the original system.
        assert!(
            ops::rel_residual(&p.matrix, &xs_dense, &b.to_dense()) < 1e-10,
            "{label}: residual"
        );
    }
}

#[test]
fn emitted_supernodal_c_reflects_the_partition() {
    let p = &unsym_suite(SuiteScale::Test)[2];
    let sup = SympilerLu::compile(
        &p.matrix,
        &SympilerOptions {
            block_lu: BlockLu::On,
            ..Default::default()
        },
    )
    .unwrap();
    let c = sup.emit_c();
    let plan = sup.supernodal().unwrap();
    assert!(c.contains("lu_supernodal_specialized"));
    assert!(c.contains(&format!(
        "static const int panelSetSize = {};",
        plan.n_panels()
    )));
    assert!(c.contains("dense_getrf"));
    assert!(c.contains("dense_trsm_right_upper"));
}
