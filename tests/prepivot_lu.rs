//! Integration tests for static pre-pivoting (maximum transversal /
//! weighted matching) across the whole LU pipeline: every
//! `(ordering, pre_pivot)` combination must factor the zero-diagonal
//! workloads through **all three execution tiers** (serial,
//! column-parallel, supernodal) to the same answers as the identically
//! pre-pivoted runtime baseline, stay bitwise identical across thread
//! counts, solve the *original* systems, keep the identity fast path a
//! true no-op, and turn structural singularity into a typed
//! compile-time error.

use sympiler::prelude::*;
use sympiler::solvers::lu::{lu_backward_error, GpLuFactors};
use sympiler::sparse::ops;
use sympiler::sparse::suite::{unsym_suite, SuiteScale};
use sympiler::sparse::{CscMatrix, TripletMatrix};

fn zero_diag_workloads() -> Vec<(&'static str, CscMatrix)> {
    vec![
        (
            "circuit_zdiag",
            sympiler::sparse::gen::circuit_zero_diag(120, 4, 2, 31),
        ),
        (
            "saddle_point",
            sympiler::sparse::gen::saddle_point_2x2(80, 16, 32),
        ),
    ]
}

#[test]
fn zero_diag_is_a_hard_error_without_a_pre_pivot() {
    for (name, a) in zero_diag_workloads() {
        assert!(
            ops::structurally_zero_diagonals(&a) > 0,
            "{name}: workload must be degenerate"
        );
        // Compilation succeeds (the symbolic phase reserves the
        // diagonal slot) but the numeric phase must report the
        // structural zero — the exact failure mode this PR unblocks.
        let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
        assert!(lu.matched_diagonals() < a.n_cols());
        assert!(matches!(
            lu.factor(&a),
            Err(sympiler::core::plan::lu::LuPlanError::ZeroPivot { .. })
        ));
        // The coupled runtime baseline fails the same way.
        assert!(matches!(
            GpLu::factor(&a, Pivoting::None),
            Err(sympiler::solvers::lu::LuError::ZeroPivot { .. })
        ));
    }
}

/// The system the compiled engines actually factor, reconstructed in
/// factored coordinates: `Qᵀ·P·(Dr·A·Dc)·Q` (scaling and permutations
/// identity when not compiled).
fn composed_system(lu: &SympilerLu, a: &CscMatrix) -> CscMatrix {
    let scaled = match lu.plan().mc64_scaling() {
        Some((dr, dc)) => ops::scale_rows_cols(a, dr, dc).unwrap(),
        None => a.clone(),
    };
    let identity: Vec<usize> = (0..a.n_cols()).collect();
    match lu.row_perm() {
        Some(rp) => ops::permute_general(&scaled, rp, lu.col_perm().unwrap_or(&identity)).unwrap(),
        None => scaled,
    }
}

#[test]
fn every_combination_factors_through_every_tier() {
    // The composition matrix: (ordering × pre_pivot × tier), with
    // MC64 equilibration on — the production configuration for
    // zero-diagonal systems. Serial and parallel must agree bitwise;
    // the supernodal tier's dense kernels reassociate sums, so it
    // gates on the growth-independent `|PA − LU| / (|L||U|)` backward
    // error at the same strict 1e-10 (a fixed element tolerance would
    // be κ(L)·κ(U)-inflated on the values-blind transversal's pivot
    // sequences).
    for (name, a) in zero_diag_workloads() {
        let n = a.n_cols();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 6) as f64).collect();
        for ordering in Ordering::ALL {
            for pre_pivot in [PrePivot::Transversal, PrePivot::WeightedMatching] {
                let opts = SympilerOptions {
                    ordering,
                    pre_pivot,
                    mc64_scale: true,
                    block_lu: BlockLu::Off,
                    ..Default::default()
                };
                let serial = SympilerLu::compile(&a, &opts).unwrap();
                assert_eq!(serial.pre_pivot(), pre_pivot);
                assert_eq!(serial.matched_diagonals(), n, "{name}: full matching");
                let f = serial.factor(&a).unwrap();
                // Serial vs parallel: bitwise at 2 and 4 threads.
                for threads in [2usize, 4] {
                    let par = SympilerLu::compile(
                        &a,
                        &SympilerOptions {
                            n_threads: threads,
                            ..opts.clone()
                        },
                    )
                    .unwrap();
                    let fp = par.factor(&a).unwrap();
                    for (x, y) in fp
                        .l()
                        .values()
                        .iter()
                        .chain(fp.u().values())
                        .zip(f.l().values().iter().chain(f.u().values()))
                    {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{name} {ordering:?}+{pre_pivot:?} @ {threads}T"
                        );
                    }
                }
                // Serial vs supernodal: the weighted matching keeps
                // the equilibrated factorization well-conditioned, so
                // the reassociation drift stays inside the strict
                // element tolerance there; both pre-pivots then gate
                // on the backward error of the factored system.
                let sup = SympilerLu::compile(
                    &a,
                    &SympilerOptions {
                        block_lu: BlockLu::On,
                        ..opts.clone()
                    },
                )
                .unwrap();
                assert!(sup.is_supernodal());
                let fs = sup.factor(&a).unwrap();
                if pre_pivot == PrePivot::WeightedMatching {
                    for (x, y) in fs
                        .l()
                        .values()
                        .iter()
                        .chain(fs.u().values())
                        .zip(f.l().values().iter().chain(f.u().values()))
                    {
                        assert!(
                            (x - y).abs() <= 1e-10 * (1.0 + y.abs()),
                            "{name} {ordering:?}+{pre_pivot:?} supernodal: {x} vs {y}"
                        );
                    }
                }
                let composed = composed_system(&serial, &a);
                let identity: Vec<usize> = (0..n).collect();
                for (tier, fx) in [("serial", &f), ("supernodal", &fs)] {
                    let as_gp = GpLuFactors {
                        l: fx.l().clone(),
                        u: fx.u().clone(),
                        row_perm: identity.clone(),
                    };
                    let eta = lu_backward_error(&composed, &as_gp);
                    assert!(
                        eta < 1e-10,
                        "{name} {ordering:?}+{pre_pivot:?} {tier}: backward error {eta:.3e}"
                    );
                }
                // Every tier's factor solves the ORIGINAL system to
                // the same strict residual. Static pivoting's
                // production contract pairs the factorization with
                // iterative refinement — a values-blind transversal's
                // multiplier growth loses digits in a raw triangular
                // solve, and a few O(nnz) sweeps win them back.
                for (tier, fx) in [("serial", &f), ("supernodal", &fs)] {
                    let x = if pre_pivot == PrePivot::Transversal {
                        fx.solve_refined(&a, &b, 1e-14, 5).0
                    } else {
                        fx.solve(&b)
                    };
                    let resid = ops::rel_residual(&a, &x, &b);
                    assert!(
                        resid < 1e-10,
                        "{name} {ordering:?}+{pre_pivot:?} {tier}: residual {resid}"
                    );
                }
            }
        }
    }
}

#[test]
fn weighted_matching_matches_prepivoted_baseline_to_1e10() {
    // The acceptance bar, stated directly: the compiled plan's factors
    // agree with the identically pre-pivoted GPLU baseline to 1e-10
    // on the zero-diagonal workloads, under every ordering.
    for (name, a) in zero_diag_workloads() {
        for ordering in Ordering::ALL {
            let opts = SympilerOptions {
                ordering,
                pre_pivot: PrePivot::WeightedMatching,
                ..Default::default()
            };
            let lu = SympilerLu::compile(&a, &opts).unwrap();
            let f = lu.factor(&a).unwrap();
            let base =
                GpLu::factor_prepivoted(&a, Pivoting::None, PrePivot::WeightedMatching, ordering)
                    .unwrap();
            assert!(f.l().same_pattern(&base.factors.l), "{name}: L pattern");
            assert!(f.u().same_pattern(&base.factors.u), "{name}: U pattern");
            for (x, y) in f.l().values().iter().chain(f.u().values()).zip(
                base.factors
                    .l
                    .values()
                    .iter()
                    .chain(base.factors.u.values()),
            ) {
                assert!(
                    (x - y).abs() < 1e-10,
                    "{name} under {ordering:?}: {x} vs {y}"
                );
            }
        }
    }
}

#[test]
fn mc64_scaling_collapses_pivot_growth_under_the_weighted_matching() {
    // The regression the scaling work exists for: on the
    // zero-diagonal circuits an unscaled factorization's element
    // growth reaches ~1e8, and with `mc64_scale` composed into the
    // weighted matching — every scaled entry ≤ 1 with the matched
    // pivot diagonal at each column's maximum — it must collapse to
    // O(1) (< 1e2) under every ordering, while the scaled plan keeps
    // solving the *original* system strictly.
    for (name, a) in zero_diag_workloads() {
        let n = a.n_cols();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        for ordering in Ordering::ALL {
            let opts = SympilerOptions {
                ordering,
                pre_pivot: PrePivot::WeightedMatching,
                mc64_scale: true,
                block_lu: BlockLu::Off,
                ..Default::default()
            };
            let lu = SympilerLu::compile(&a, &opts).unwrap();
            let (dr, dc) = lu.plan().mc64_scaling().expect("scalings compiled");
            assert_eq!((dr.len(), dc.len()), (n, n));
            let f = lu.factor(&a).unwrap();
            let health = lu.plan().health_of(&a, &f);
            assert!(
                health.growth < 1e2,
                "{name} under {ordering:?}: scaled pivot growth {:.3e} must stay O(1)",
                health.growth
            );
            let x = f.solve(&b);
            let resid = ops::rel_residual(&a, &x, &b);
            assert!(resid < 1e-10, "{name} under {ordering:?}: residual {resid}");
        }
    }
}

#[test]
fn identity_fast_path_is_a_no_op_on_the_classic_suite() {
    // Transversal on every zero-free-diagonal suite problem must bake
    // nothing and reproduce the Off plan bitwise.
    for p in unsym_suite(SuiteScale::Test) {
        if p.zero_diag {
            continue;
        }
        let off = SympilerLu::compile(&p.matrix, &SympilerOptions::default()).unwrap();
        let fast = SympilerLu::compile(
            &p.matrix,
            &SympilerOptions {
                pre_pivot: PrePivot::Transversal,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(fast.pre_pivot(), PrePivot::Transversal);
        assert_eq!(
            fast.row_perm(),
            off.row_perm(),
            "{}: identity matching must bake no row map",
            p.name
        );
        let (f1, f2) = (
            fast.factor(&p.matrix).unwrap(),
            off.factor(&p.matrix).unwrap(),
        );
        for (x, y) in f1.u().values().iter().zip(f2.u().values()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{}", p.name);
        }
    }
}

#[test]
fn structurally_singular_matrices_fail_at_compile_time_with_a_typed_error() {
    // No perfect matching exists: column 1 and column 0 share their
    // only row. Every pre-pivot variant must reject at compile time;
    // Off compiles and fails only in the numeric phase.
    let mut t = TripletMatrix::new(3, 3);
    t.push(0, 0, 1.0);
    t.push(0, 1, 2.0);
    t.push(1, 2, 3.0);
    t.push(2, 2, 4.0);
    let a = t.to_csc().unwrap();
    for pre_pivot in [PrePivot::Transversal, PrePivot::WeightedMatching] {
        let err = SympilerLu::compile(
            &a,
            &SympilerOptions {
                pre_pivot,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            sympiler::core::plan::lu::LuPlanError::StructurallySingular {
                n: 3,
                structural_rank: 2
            },
            "{pre_pivot:?}"
        );
        // The error renders with the diagnosis, not a bare zero pivot.
        assert!(err.to_string().contains("structurally singular"));
        assert!(err.to_string().contains("2 of 3"));
    }
}

#[test]
fn sparse_rhs_solves_speak_original_coordinates_under_pre_pivot() {
    for (name, a) in zero_diag_workloads() {
        let n = a.n_cols();
        let opts = SympilerOptions {
            ordering: Ordering::Colamd,
            pre_pivot: PrePivot::WeightedMatching,
            ..Default::default()
        };
        let f = SympilerLu::compile(&a, &opts).unwrap().factor(&a).unwrap();
        let idx: Vec<usize> = (0..n).filter(|i| i % 13 == 5).collect();
        let vals: Vec<f64> = idx.iter().map(|&i| 1.0 + (i % 4) as f64).collect();
        let b = SparseVec::try_new(n, idx, vals).unwrap();
        let xs = f.solve_sparse(&b).to_dense();
        let xd = f.solve(&b.to_dense());
        for i in 0..n {
            assert!(
                (xs[i] - xd[i]).abs() < 1e-10,
                "{name} row {i}: {} vs {}",
                xs[i],
                xd[i]
            );
        }
    }
}

#[test]
fn emitted_c_artifact_embeds_the_composed_permutations() {
    // The C artifact for a pre-pivoted plan must embed the gather
    // tables (colPerm / rowNewOf) like an ordered plan does, and the
    // row table must differ from the column table exactly when a
    // pre-pivot moved rows.
    let a = sympiler::sparse::gen::circuit_zero_diag(40, 4, 1, 7);
    let lu = SympilerLu::compile(
        &a,
        &SympilerOptions {
            pre_pivot: PrePivot::WeightedMatching,
            block_lu: BlockLu::Off,
            ..Default::default()
        },
    )
    .unwrap();
    let c = lu.emit_c();
    assert!(c.contains("lu_factor_specialized"));
    assert!(c.contains("colPerm"), "column gather table embedded");
    assert!(c.contains("rowNewOf"), "inverse row map embedded");
    // Natural ordering + pre-pivot: the column map is the identity,
    // the row map is not.
    assert!(lu.col_perm().is_none(), "natural ordering compiles no Q");
    let rperm = lu.row_perm().expect("pre-pivot bakes the row map");
    assert!(rperm.iter().enumerate().any(|(new, &old)| new != old));
}
