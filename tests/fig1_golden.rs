//! Golden test: the paper's Figure 1 running example, end to end.
//!
//! The 10x10 lower-triangular system with b = {1, 6} (1-based) must
//! produce the reach-set {1,6,7,8,9,10}, peel exactly columns 1 and 8
//! (1-based; 0-based 0 and 7, the two columns with column count 3), and
//! the specialized C must contain the constants the paper's Figure 1e
//! shows (`Lx[20]` as the diagonal of column 8, the `p = 21..23` loop).

use sympiler::core::emit::emit_trisolve_c;
use sympiler::prelude::*;
use sympiler::solvers::trisolve;

fn fig1_l() -> CscMatrix {
    let edges_1based: &[(usize, usize)] = &[
        (6, 1),
        (10, 1),
        (3, 2),
        (5, 2),
        (6, 3),
        (9, 3),
        (6, 4),
        (8, 4),
        (9, 4),
        (6, 5),
        (9, 5),
        (7, 6),
        (8, 7),
        (9, 8),
        (10, 8),
        (10, 9),
    ];
    let mut t = TripletMatrix::new(10, 10);
    for j in 0..10 {
        t.push(j, j, 2.0);
    }
    for &(i, j) in edges_1based {
        t.push(i - 1, j - 1, -0.1);
    }
    t.to_csc().unwrap()
}

#[test]
fn reach_set_matches_paper() {
    let l = fig1_l();
    let r = sympiler::graph::reach(&l, &[0, 5]);
    let set: std::collections::BTreeSet<usize> = r.iter().copied().collect();
    assert_eq!(
        set,
        [0usize, 5, 6, 7, 8, 9].into_iter().collect(),
        "Reach_L({{1,6}}) = {{1,6,7,8,9,10}} (1-based)"
    );
}

#[test]
fn column_counts_match_figure_1e_constants() {
    let l = fig1_l();
    // Column 1 (0-based 0): 3 stored entries (code peels it and loops
    // p = 1..3).
    assert_eq!(l.col_nnz(0), 3);
    assert_eq!(l.col_ptr()[0], 0);
    // Column 8 (0-based 7): diagonal at Lx[20], loops p = 21..23.
    assert_eq!(l.col_ptr()[7], 20, "diagonal of column 8 must be Lx[20]");
    assert_eq!(l.col_nnz(7), 3);
    // The other reached columns have column count <= 2 (not peeled).
    for j in [5usize, 6, 8, 9] {
        assert!(l.col_nnz(j) <= 2, "column {j} must not be peeled");
    }
}

#[test]
fn plan_peels_exactly_the_two_heavy_columns() {
    let l = fig1_l();
    let ts = SympilerTriSolve::compile(&l, &[0, 5], &SympilerOptions::default());
    assert_eq!(
        ts.plan().n_peeled(),
        2,
        "peel threshold 2 selects columns 0 and 7 (0-based) only"
    );
}

#[test]
fn generated_c_reproduces_figure_1e_structure() {
    let l = fig1_l();
    let mut reach = sympiler::graph::reach(&l, &[0, 5]);
    reach.sort_unstable();
    let c = emit_trisolve_c(&l, &reach, 2);
    // Peeled column 0 with concrete constants.
    assert!(c.contains("x[0] /= Lx[0]; /* peel col 0 */"), "\n{c}");
    assert!(c.contains("for (int p = 1; p < 3; p++)"), "\n{c}");
    // Peeled column 7 (1-based 8) with the paper's exact constants.
    assert!(c.contains("x[7] /= Lx[20]; /* peel col 7 */"), "\n{c}");
    assert!(c.contains("for (int p = 21; p < 23; p++)"), "\n{c}");
    // The pruned loop over the embedded reach set.
    assert!(c.contains("reachSet"), "\n{c}");
    assert!(c.contains("x[j] /= Lx[Lp[j]];"), "\n{c}");
}

#[test]
fn all_five_implementations_agree_on_fig1() {
    let l = fig1_l();
    let b = SparseVec::try_new(10, vec![0, 5], vec![3.0, -1.0]).unwrap();
    // Figure 1b: naive.
    let mut x_naive = b.to_dense();
    trisolve::naive_forward(&l, &mut x_naive);
    // Figure 1c: library.
    let mut x_lib = b.to_dense();
    trisolve::library_forward(&l, &mut x_lib);
    // Figure 1d: decoupled.
    let reach = sympiler::graph::reach(&l, b.indices());
    let mut x_dec = vec![0.0; 10];
    trisolve::decoupled_forward(&l, &b, &reach, &mut x_dec);
    // Figure 1e: Sympiler plan.
    let mut ts = SympilerTriSolve::compile(&l, b.indices(), &SympilerOptions::default());
    let x_symp = ts.solve(&b);
    for i in 0..10 {
        assert!((x_naive[i] - x_lib[i]).abs() < 1e-14);
        assert!((x_naive[i] - x_dec[i]).abs() < 1e-14);
        assert!((x_naive[i] - x_symp[i]).abs() < 1e-12);
    }
    // The white vertices of Figure 1a ({2,3,4,5} 1-based) stay zero.
    for j in [1usize, 2, 3, 4] {
        assert_eq!(x_naive[j], 0.0, "column {} must be skipped", j + 1);
    }
}

#[cfg(feature = "parallel")]
#[test]
fn parallel_executor_agrees_on_fig1() {
    let l = fig1_l();
    let b = SparseVec::try_new(10, vec![0, 5], vec![3.0, -1.0]).unwrap();
    let mut x_ref = b.to_dense();
    trisolve::naive_forward(&l, &mut x_ref);
    let solver = sympiler::core::plan::tri_parallel::ParallelTriSolve::build(&l, b.indices(), 2);
    let mut x = vec![0.0; 10];
    solver.solve(&b, &mut x);
    for i in 0..10 {
        assert!((x[i] - x_ref[i]).abs() < 1e-12);
    }
}
