//! Integration tests for the fill-reducing ordering knob across the
//! whole LU pipeline: every `Ordering` variant must produce a valid
//! permutation, factor the unsymmetric suite to the same answers as
//! the identically ordered runtime baseline (`Qᵀ A Q = L U` to 1e-10),
//! stay **bitwise identical** across 1/2/4 worker threads, and solve
//! the *original* systems. COLAMD must additionally earn its keep:
//! less fill than natural order on every circuit/random problem, and a
//! wider elimination DAG on the problems whose natural DAGs collapse
//! to chains.

use sympiler::prelude::*;
use sympiler::sparse::ops;
use sympiler::sparse::suite::{unsym_suite, SuiteScale, UnsymProblem};

/// The pre-pivot each suite problem needs: the zero-diagonal problems
/// only factor under a matching (weighted, so the strict 1e-10
/// contracts below keep holding — it restores a dominant diagonal),
/// everything else keeps the historical `Off` path.
fn suite_pre_pivot(p: &UnsymProblem) -> PrePivot {
    if p.zero_diag {
        PrePivot::WeightedMatching
    } else {
        PrePivot::Off
    }
}

fn factor_bits(f: &LuFactor) -> Vec<u64> {
    f.l()
        .values()
        .iter()
        .chain(f.u().values())
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn every_ordering_is_a_valid_permutation_on_the_suite() {
    for p in unsym_suite(SuiteScale::Test) {
        for ordering in Ordering::ALL {
            let perm = sympiler::graph::compute_ordering(&p.matrix, ordering);
            match perm {
                None => assert_eq!(ordering, Ordering::Natural, "{}", p.name),
                Some(q) => {
                    assert_eq!(q.len(), p.n(), "{}: length", p.name);
                    assert!(
                        ops::inverse_permutation(&q).is_ok(),
                        "{}: {} must be a bijection",
                        p.name,
                        ordering.label()
                    );
                }
            }
        }
    }
}

#[test]
fn ordered_factors_reconstruct_and_match_baseline_on_the_suite() {
    for p in unsym_suite(SuiteScale::Test) {
        for ordering in Ordering::ALL {
            let pre_pivot = suite_pre_pivot(&p);
            let opts = SympilerOptions {
                ordering,
                pre_pivot,
                ..Default::default()
            };
            let lu = SympilerLu::compile(&p.matrix, &opts).unwrap();
            let f = lu.factor(&p.matrix).unwrap();
            // The identically pre-pivoted + ordered coupled baseline
            // must agree to 1e-10 in every factor value.
            let base =
                GpLu::factor_prepivoted(&p.matrix, Pivoting::None, pre_pivot, ordering).unwrap();
            assert!(f.l().same_pattern(&base.factors.l), "{}: L", p.name);
            assert!(f.u().same_pattern(&base.factors.u), "{}: U", p.name);
            for (x, y) in f.l().values().iter().chain(f.u().values()).zip(
                base.factors
                    .l
                    .values()
                    .iter()
                    .chain(base.factors.u.values()),
            ) {
                assert!(
                    (x - y).abs() < 1e-10,
                    "{} under {}: factor drift",
                    p.name,
                    ordering.label()
                );
            }
            // Qᵀ·P·A·Q = L U to 1e-10, checked through the baseline's
            // reconstruction machinery on the matrix the factors
            // actually describe (rebuilt from the plan's baked maps).
            let identity: Vec<usize> = (0..p.n()).collect();
            let ordered_a = match lu.row_perm() {
                Some(rperm) => {
                    ops::permute_general(&p.matrix, rperm, lu.col_perm().unwrap_or(&identity))
                        .unwrap()
                }
                None => p.matrix.clone(),
            };
            let err = sympiler::solvers::lu::lu_reconstruction_error(&ordered_a, &base.factors);
            assert!(
                err <= 1e-10,
                "{} under {}: reconstruction error {err}",
                p.name,
                ordering.label()
            );
            // And the end-to-end solve answers the original system.
            let b: Vec<f64> = (0..p.n()).map(|i| 1.0 + (i % 7) as f64).collect();
            let x = f.solve(&b);
            assert!(
                ops::rel_residual(&p.matrix, &x, &b) < 1e-10,
                "{} under {}: residual",
                p.name,
                ordering.label()
            );
        }
    }
}

#[test]
#[cfg(feature = "parallel")]
fn factors_bitwise_identical_across_thread_counts_for_every_ordering() {
    for p in unsym_suite(SuiteScale::Test) {
        for ordering in Ordering::ALL {
            let pre_pivot = suite_pre_pivot(&p);
            let serial = SympilerLu::compile(
                &p.matrix,
                &SympilerOptions {
                    ordering,
                    pre_pivot,
                    ..Default::default()
                },
            )
            .unwrap();
            let bits_1t = factor_bits(&serial.factor(&p.matrix).unwrap());
            for threads in [2usize, 4] {
                let par = SympilerLu::compile(
                    &p.matrix,
                    &SympilerOptions {
                        ordering,
                        pre_pivot,
                        n_threads: threads,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(par.n_threads(), threads);
                let bits = factor_bits(&par.factor(&p.matrix).unwrap());
                assert_eq!(
                    bits,
                    bits_1t,
                    "{} under {} at {threads} threads: bits must not move",
                    p.name,
                    ordering.label()
                );
            }
        }
    }
}

#[test]
fn colamd_reduces_fill_on_every_circuit_and_random_problem() {
    // The acceptance criterion, verbatim, at test scale: on the
    // circuit/random_unsym problems COLAMD strictly reduces nnz(L+U)
    // versus natural order.
    for p in unsym_suite(SuiteScale::Test) {
        let natural = SympilerLu::compile(&p.matrix, &SympilerOptions::default()).unwrap();
        let colamd = SympilerLu::compile(
            &p.matrix,
            &SympilerOptions {
                ordering: Ordering::Colamd,
                ..Default::default()
            },
        )
        .unwrap();
        let nat_nnz = natural.plan().l_nnz() + natural.plan().u_nnz();
        let col_nnz = colamd.plan().l_nnz() + colamd.plan().u_nnz();
        assert!(
            col_nnz < nat_nnz,
            "{}: colamd {col_nnz} must beat natural {nat_nnz}",
            p.name
        );
        assert!(colamd.flops() < natural.flops(), "{}: flops", p.name);
    }
}

#[test]
#[cfg(feature = "parallel")]
fn colamd_widens_the_elimination_dag_where_natural_chains() {
    // The parallel-front half of the acceptance criterion: the
    // convection/circuit problems factor as near-chains unordered
    // (avg parallelism ~1); COLAMD must lift avg parallelism on at
    // least two of them.
    let mut widened = 0usize;
    for p in unsym_suite(SuiteScale::Test) {
        let plan_of = |ordering| {
            ParallelLuPlan::from_plan(
                SympilerLu::compile(
                    &p.matrix,
                    &SympilerOptions {
                        ordering,
                        ..Default::default()
                    },
                )
                .unwrap()
                .plan()
                .clone(),
                4,
            )
        };
        let natural = plan_of(Ordering::Natural);
        let colamd = plan_of(Ordering::Colamd);
        if colamd.avg_parallelism() > natural.avg_parallelism() + 0.25 {
            widened += 1;
        }
    }
    assert!(
        widened >= 2,
        "colamd must widen the DAG on at least two suite problems, got {widened}"
    );
}

#[test]
fn rcm_and_colamd_agree_with_natural_solutions() {
    // Orderings change the arithmetic (different elimination order ⇒
    // different rounding), but the solutions must agree to solver
    // accuracy.
    for p in unsym_suite(SuiteScale::Test) {
        let pre_pivot = suite_pre_pivot(&p);
        let b: Vec<f64> = (0..p.n()).map(|i| (i as f64).cos() + 2.0).collect();
        let x_nat = SympilerLu::compile(
            &p.matrix,
            &SympilerOptions {
                pre_pivot,
                ..Default::default()
            },
        )
        .unwrap()
        .factor(&p.matrix)
        .unwrap()
        .solve(&b);
        for ordering in [Ordering::Rcm, Ordering::Colamd] {
            let x = SympilerLu::compile(
                &p.matrix,
                &SympilerOptions {
                    ordering,
                    pre_pivot,
                    ..Default::default()
                },
            )
            .unwrap()
            .factor(&p.matrix)
            .unwrap()
            .solve(&b);
            for (u, v) in x.iter().zip(&x_nat) {
                assert!(
                    (u - v).abs() < 1e-8 * (1.0 + v.abs()),
                    "{} under {}: {u} vs {v}",
                    p.name,
                    ordering.label()
                );
            }
        }
    }
}
