//! Edge-case integration tests: degenerate sizes, empty inputs,
//! extreme options — the inputs a downstream user will eventually feed
//! the library.

use sympiler::prelude::*;
use sympiler::sparse::gen;

#[test]
fn one_by_one_system() {
    let mut t = TripletMatrix::new(1, 1);
    t.push(0, 0, 9.0);
    let a = t.to_csc().unwrap();
    let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).unwrap();
    let f = chol.factor(&a).unwrap();
    let l = f.to_csc();
    assert!((l.get(0, 0) - 3.0).abs() < 1e-15);
    let x = f.solve(&[18.0]);
    assert!((x[0] - 2.0).abs() < 1e-12);
}

#[test]
fn empty_rhs_trisolve_plan() {
    let l = gen::random_lower_triangular(20, 2, 1);
    let mut ts = SympilerTriSolve::compile(&l, &[], &SympilerOptions::default());
    assert_eq!(ts.reach().len(), 0);
    assert_eq!(ts.flops(), 0);
    let b = SparseVec::zeros(20);
    let x = ts.solve(&b);
    assert!(x.iter().all(|&v| v == 0.0));
}

#[test]
fn rhs_at_last_column_only() {
    let l = gen::random_lower_triangular(30, 3, 2);
    let b = SparseVec::try_new(30, vec![29], vec![7.0]).unwrap();
    let mut ts = SympilerTriSolve::compile(&l, b.indices(), &SympilerOptions::default());
    assert_eq!(ts.reach(), &[29], "last column reaches nothing else");
    let x = ts.solve(&b);
    assert!((x[29] - 7.0 / l.get(29, 29)).abs() < 1e-12);
    assert_eq!(x.iter().filter(|&&v| v != 0.0).count(), 1);
}

#[test]
fn dense_rhs_equals_unpruned_plan() {
    let l = gen::random_lower_triangular(25, 3, 3);
    let beta: Vec<usize> = (0..25).collect();
    let values = vec![1.0; 25];
    let b = SparseVec::try_new(25, beta.clone(), values).unwrap();
    let mut ts = SympilerTriSolve::compile(&l, &beta, &SympilerOptions::default());
    assert_eq!(ts.reach().len(), 25);
    let x = ts.solve(&b);
    let mut expect = b.to_dense();
    sympiler::solvers::trisolve::naive_forward(&l, &mut expect);
    for (p, q) in x.iter().zip(&expect) {
        assert!((p - q).abs() < 1e-11);
    }
}

#[test]
fn extreme_supernode_width_caps() {
    let a = gen::banded_spd(30, 5, 4);
    for width in [1usize, 2, 64, 1000] {
        let opts = SympilerOptions {
            max_supernode_width: width,
            ..Default::default()
        };
        let chol = SympilerCholesky::compile(&a, &opts).unwrap();
        let f = chol.factor(&a).unwrap();
        let b = vec![1.0; 30];
        let x = f.solve(&b);
        let resid = sympiler::sparse::ops::rel_residual_sym_lower(&a, &x, &b);
        assert!(resid < 1e-12, "width cap {width}: residual {resid}");
    }
}

#[test]
fn all_options_off_still_correct() {
    let a = gen::grid2d_laplacian(6, 6, false, 5);
    let opts = SympilerOptions {
        vs_block: false,
        vi_prune: false,
        low_level: false,
        ..Default::default()
    };
    let chol = SympilerCholesky::compile(&a, &opts).unwrap();
    let f = chol.factor(&a).unwrap();
    let l_ref = sympiler::solvers::SimplicialCholesky::analyze(&a)
        .unwrap()
        .factor(&a)
        .unwrap();
    for (p, q) in f.to_csc().values().iter().zip(l_ref.values()) {
        assert!((p - q).abs() < 1e-9);
    }
    // Trisolve with everything off.
    let l = f.to_csc();
    let b = SparseVec::try_new(36, vec![0], vec![1.0]).unwrap();
    let mut ts = SympilerTriSolve::compile(&l, b.indices(), &opts);
    let x = ts.solve(&b);
    let mut expect = b.to_dense();
    sympiler::solvers::trisolve::naive_forward(&l, &mut expect);
    for (p, q) in x.iter().zip(&expect) {
        assert!((p - q).abs() < 1e-11);
    }
}

#[test]
fn huge_peel_threshold_disables_peeling() {
    let l = gen::random_lower_triangular(40, 5, 6);
    let beta: Vec<usize> = vec![0, 3];
    let opts = SympilerOptions {
        peel_col_count: usize::MAX,
        ..Default::default()
    };
    let ts = SympilerTriSolve::compile(&l, &beta, &opts);
    assert_eq!(ts.plan().n_peeled(), 0);
    // Threshold 0 peels everything reached (every column has >= 1 nnz).
    let opts0 = SympilerOptions {
        peel_col_count: 0,
        vs_block: false,
        ..Default::default()
    };
    let ts0 = SympilerTriSolve::compile(&l, &beta, &opts0);
    assert_eq!(ts0.plan().n_peeled(), ts0.reach().len());
}

#[test]
fn zero_matrix_dimension() {
    let a = CscMatrix::zeros(0, 0);
    let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).unwrap();
    let f = chol.factor(&a).unwrap();
    assert_eq!(f.solve(&[]).len(), 0);
}

#[test]
fn values_scaled_by_tiny_and_huge_factors() {
    // Numeric robustness across magnitudes (pattern constant).
    let a0 = gen::grid2d_laplacian(5, 5, false, 7);
    let chol = SympilerCholesky::compile(&a0, &SympilerOptions::default()).unwrap();
    for scale in [1e-150, 1e-30, 1e30, 1e150] {
        let mut a = a0.clone();
        for v in a.values_mut() {
            *v *= scale;
        }
        let f = chol.factor(&a).unwrap();
        let b = vec![scale; 25];
        let x = f.solve(&b);
        let resid = sympiler::sparse::ops::rel_residual_sym_lower(&a, &x, &b);
        assert!(resid < 1e-10, "scale {scale:e}: residual {resid}");
    }
}

#[test]
fn lu_one_by_one_system() {
    let mut t = TripletMatrix::new(1, 1);
    t.push(0, 0, 4.0);
    let a = t.to_csc().unwrap();
    let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
    let f = lu.factor(&a).unwrap();
    assert_eq!(f.l().get(0, 0), 1.0);
    assert_eq!(f.u().get(0, 0), 4.0);
    let x = f.solve(&[12.0]);
    assert!((x[0] - 3.0).abs() < 1e-15);
}

#[test]
fn lu_diagonal_matrix_is_trivial() {
    let mut t = TripletMatrix::new(6, 6);
    for j in 0..6 {
        t.push(j, j, (j + 1) as f64);
    }
    let a = t.to_csc().unwrap();
    let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
    assert_eq!(lu.plan().n_updates(), 0, "diagonal needs no updates");
    let f = lu.factor(&a).unwrap();
    assert_eq!(f.l().nnz(), 6);
    assert_eq!(f.u().nnz(), 6);
    let b: Vec<f64> = (1..=6).map(|i| i as f64).collect();
    let x = f.solve(&b);
    for v in x {
        assert!((v - 1.0).abs() < 1e-15);
    }
}

#[test]
fn lu_fully_dense_column_fills_and_factors() {
    // A dense first row + column (arrow) plus a superdiagonal chain:
    // the worst-case single column stays exact.
    let n = 12;
    let mut t = TripletMatrix::new(n, n);
    for j in 0..n {
        t.push(j, j, 10.0 + j as f64);
    }
    for i in 1..n {
        t.push(i, 0, -0.5);
        t.push(0, i, -0.25);
        if i >= 2 {
            t.push(i - 1, i, -0.125);
        }
    }
    let a = t.to_csc().unwrap();
    let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
    let f = lu.factor(&a).unwrap();
    // Column 0 of L is fully dense.
    assert_eq!(f.l().col_nnz(0), n);
    let base = GpLu::factor(&a, Pivoting::None).unwrap();
    assert!(f.l().same_pattern(&base.l));
    for (p, q) in f.l().values().iter().zip(base.l.values()) {
        assert!((p - q).abs() < 1e-12);
    }
    let b = vec![1.0; n];
    let x = f.solve(&b);
    assert!(sympiler::sparse::ops::rel_residual(&a, &x, &b) < 1e-12);
}

#[test]
fn lu_pattern_mismatch_and_zero_pivot_are_reported() {
    let a = gen::random_unsym(15, 3, 1);
    let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
    let other = gen::random_unsym(15, 3, 2);
    assert!(lu.factor(&other).is_err(), "pattern mismatch must fail");
    let mut t = TripletMatrix::new(2, 2);
    t.push(0, 0, 1.0);
    t.push(1, 1, 1.0);
    let d = t.to_csc().unwrap();
    let lu = SympilerLu::compile(&d, &SympilerOptions::default()).unwrap();
    let mut bad = d.clone();
    bad.values_mut()[0] = 0.0;
    assert!(lu.factor(&bad).is_err(), "zero pivot must fail");
}

#[cfg(feature = "parallel")]
#[test]
fn parallel_solver_handles_degenerate_inputs() {
    use sympiler::core::plan::tri_parallel::ParallelTriSolve;
    let l = CscMatrix::identity(5);
    let solver = ParallelTriSolve::build(&l, &[2], 3);
    assert_eq!(solver.n_levels(), 1);
    let b = SparseVec::try_new(5, vec![2], vec![4.0]).unwrap();
    let mut x = vec![0.0; 5];
    solver.solve(&b, &mut x);
    assert_eq!(x[2], 4.0);
}
