//! Integration test for **Table 1**: the classification of inspection
//! graphs, strategies, inspection sets, and enabled low-level
//! transformations — checked against the concrete inspector outputs on
//! real matrices (experiment E2 in DESIGN.md).

use sympiler::core::inspector::{
    CholVIPruneInspector, CholVSBlockInspector, EnabledTransformation, InspectionGraph,
    InspectionStrategy, SymbolicInspector, TriVIPruneInspector, TriVSBlockInspector,
};
use sympiler::sparse::gen;

#[test]
fn table1_rows_are_reproduced() {
    // Row 1: Triangular solve x VI-Prune.
    let i = TriVIPruneInspector;
    assert_eq!(i.graph(), InspectionGraph::DependenceGraphWithRhs);
    assert_eq!(i.strategy(), InspectionStrategy::Dfs);
    // Row 1 (Cholesky columns): etree + SP(A), single-node up-traversal.
    let i = CholVIPruneInspector;
    assert_eq!(i.graph(), InspectionGraph::EtreeWithSpA);
    assert_eq!(i.strategy(), InspectionStrategy::SingleNodeUpTraversal);
    // Row 2: VS-Block columns.
    let i = TriVSBlockInspector;
    assert_eq!(i.graph(), InspectionGraph::DependenceGraph);
    assert_eq!(i.strategy(), InspectionStrategy::NodeEquivalence);
    let i = CholVSBlockInspector;
    assert_eq!(i.graph(), InspectionGraph::EtreeWithColCount);
    assert_eq!(i.strategy(), InspectionStrategy::UpTraversal);
}

#[test]
fn enabled_low_level_transformations_match_table1() {
    use EnabledTransformation::*;
    // VI-Prune enables: dist, unroll, peel, vectorization.
    let expect_prune = [LoopDistribution, Unroll, Peel, Vectorize];
    for t in expect_prune {
        assert!(TriVIPruneInspector.enables().contains(&t));
        assert!(CholVIPruneInspector.enables().contains(&t));
    }
    // VS-Block enables: tile, unroll, peel, vectorization.
    let expect_block = [Tile, Unroll, Peel, Vectorize];
    for t in expect_block {
        assert!(TriVSBlockInspector.enables().contains(&t));
        assert!(CholVSBlockInspector.enables().contains(&t));
    }
    // And the differences matter: VI-Prune does not tile; VS-Block does
    // not distribute.
    assert!(!TriVIPruneInspector.enables().contains(&Tile));
    assert!(!TriVSBlockInspector.enables().contains(&LoopDistribution));
}

#[test]
fn inspection_sets_have_the_declared_shapes() {
    let a = gen::grid2d_laplacian(8, 8, false, 5);
    // Cholesky VI-Prune: prune-set per row = SP(L_j).
    let prune = CholVIPruneInspector.inspect(&a);
    assert_eq!(prune.symbolic.n, 64);
    // Cholesky VS-Block: block-set = supernodes.
    let block = CholVSBlockInspector.inspect(&prune.symbolic, 0);
    assert!(block.partition.n_supernodes() <= 64);
    // Triangular solve VI-Prune on the factor: reach-set.
    let l = sympiler::prelude::CscMatrix::try_new(
        64,
        64,
        prune.symbolic.l_col_ptr.clone(),
        prune.symbolic.l_row_idx.clone(),
        vec![1.0; prune.symbolic.l_nnz()],
    )
    .unwrap();
    let reach = TriVIPruneInspector.inspect(&l, &[0]);
    assert!(!reach.reach.is_empty());
    // Triangular solve VS-Block: block-set via node equivalence.
    let tri_block = TriVSBlockInspector.inspect(&l, 0);
    assert_eq!(tri_block.partition.n_cols(), 64);
}
