//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small slice of criterion's API the workspace benches
//! use — `Criterion::benchmark_group`, group tuning knobs,
//! `bench_function` with a `Bencher::iter` closure, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//! Measurements are median-of-samples wall-clock times printed to
//! stdout; there is no statistical analysis, HTML report, or saved
//! baseline. Enough to run `cargo bench` hermetically.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
            throughput: None,
        };
        group.run_one(id, &mut f);
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            full: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Throughput annotation (recorded, reported as elements/sec).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A set of related benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = id.to_string();
        self.run_one(&label, &mut f);
        self
    }

    pub fn bench_with_input<I: Display, T, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let label = id.to_string();
        self.run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run_one(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: run the body until the warm-up budget is spent.
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                deadline: Instant::now() + self.warm_up,
            },
            samples: Vec::new(),
        };
        f(&mut bencher);
        // Measurement: collect sample_size timed runs within the budget.
        bencher.mode = Mode::Measure {
            deadline: Instant::now() + self.measurement,
            target_samples: self.sample_size,
        };
        bencher.samples.clear();
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("  {label}: no samples collected");
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0 => {
                format!("  ({:.3} Melem/s)", n as f64 / median as f64 * 1e9 / 1e6)
            }
            Some(Throughput::Bytes(n)) if median > 0 => {
                format!("  ({:.3} MB/s)", n as f64 / median as f64 * 1e9 / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "  {label}: median {}  [{} samples]{extra}",
            fmt_ns(median),
            samples.len()
        );
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

enum Mode {
    WarmUp {
        deadline: Instant,
    },
    Measure {
        deadline: Instant,
        target_samples: usize,
    },
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    mode: Mode,
    samples: Vec<u128>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::WarmUp { deadline } => {
                while Instant::now() < deadline {
                    std::hint::black_box(f());
                }
            }
            Mode::Measure {
                deadline,
                target_samples,
            } => {
                // Calibrate iterations-per-sample so one sample takes
                // roughly measurement/target_samples.
                let t0 = Instant::now();
                std::hint::black_box(f());
                let once = t0.elapsed().max(Duration::from_nanos(1));
                let budget = deadline.saturating_duration_since(Instant::now());
                let per_sample = budget / (target_samples.max(1) as u32 + 1);
                let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;
                for _ in 0..target_samples {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(f());
                    }
                    let elapsed = start.elapsed().as_nanos() / iters as u128;
                    self.samples.push(elapsed);
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }
}

/// Re-export used by some criterion idioms.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        tiny_bench(&mut c);
    }
}
