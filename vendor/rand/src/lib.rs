//! Offline stand-in for the `rand` crate.
//!
//! This workspace vendors a deterministic pseudo-random source with the
//! exact API surface the crates use (`rand::rngs::StdRng`,
//! `rand::SeedableRng::seed_from_u64`, `rand::RngExt::random_range`),
//! because the build environment has no network access to crates.io.
//! The generator is xoshiro256++ seeded through SplitMix64 — high
//! quality for test-data generation and fully reproducible across
//! platforms, which is all the workspace needs (every caller seeds
//! explicitly and asserts determinism).

/// Core trait: a source of 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (the subset of `rand::SeedableRng` used
/// here: everything is seeded from a `u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling extension methods (the `rand` 0.9 `random_range` surface).
pub trait RngExt: RngCore + Sized {
    /// Sample uniformly from a range, e.g. `0..n`, `1..=k`, `0.0..1.0`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// A uniform sample of the whole type (only `f64` in `[0, 1)` and
    /// `bool` are provided).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + Sized> RngExt for R {}

/// Types samplable without a range.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(43);
        let run_a: Vec<usize> = (0..16).map(|_| a.random_range(0..1000)).collect();
        let run_c: Vec<usize> = (0..16).map(|_| c.random_range(0..1000)).collect();
        assert_ne!(run_a, run_c);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.random_range(5..=9);
            assert!((5..=9).contains(&w));
            let x: f64 = rng.random_range(0.25..0.5);
            assert!((0.25..0.5).contains(&x));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| rng.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
