//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this workspace's property
//! tests use: range and tuple [`strategy::Strategy`]s, `prop_map`, the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! attribute, and the `prop_assert!`/`prop_assert_eq!` assertions.
//! Sampling is deterministic (fixed seed advanced across cases), which
//! trades shrinking and persistence for reproducibility — acceptable
//! for a hermetic test suite with no crates.io access.

// Re-exported so the `proptest!` macro can name the RNG from consumer
// crates that do not themselves depend on `rand`.
#[doc(hidden)]
pub use rand;

pub mod strategy {
    use rand::rngs::StdRng;

    /// A generator of test values. The real proptest `Strategy` builds
    /// value *trees* for shrinking; this stand-in only samples.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::RngExt;
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::RngExt;
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            use rand::RngExt;
            rng.random_range(self.clone())
        }
    }

    /// `Just`-style constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Run each contained `#[test]` function over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Seed differs per test (from the function name) so
                // sibling tests explore different inputs.
                let seed = {
                    let name = stringify!($name);
                    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                    })
                };
                let mut rng = <$crate::rand::rngs::StdRng as
                    $crate::rand::SeedableRng>::seed_from_u64(seed);
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let result: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = result {
                        panic!("proptest case {case}/{} failed: {msg}", config.cases);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strat),+) $body )*
        }
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// message instead of unwinding mid-generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}; {}) at {}:{}",
                stringify!($left), stringify!($right), l, r,
                format!($($fmt)*), file!(), line!()
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(n in 1usize..=40, seed in 0u64..1000) {
            prop_assert!((1..=40).contains(&n));
            prop_assert!(seed < 1000, "seed {}", seed);
        }

        #[test]
        fn prop_map_applies(v in (1usize..=4, 0u64..10).prop_map(|(a, b)| a as u64 + b)) {
            prop_assert!((1..14).contains(&v));
        }
    }
}
